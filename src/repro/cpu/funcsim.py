"""Functional execution of SPISA instructions.

The timing cores (:mod:`repro.cpu.inorder`, :mod:`repro.cpu.ooo`) decide
*when* each instruction executes; this module defines *what* it does.  The
split mirrors SlackSim's modification of SimpleScalar: "register values are
fetched just before execution ... SlackSim executes each instruction when it
reaches an execution unit" (paper §2.2).  Hence the API separates address
generation (:func:`effective_address`), the functional memory touch
(:func:`do_load` / :func:`do_store` / :func:`do_amo`) and register-only
execution (:func:`execute`), so cores can place each at the correct simulated
cycle.

Arithmetic follows RISC-V-style conventions: 64-bit two's-complement wraparound,
``div/rem`` by zero produce ``-1`` / the dividend, shifts use the low 6 bits
of the shift amount, float compares with NaN are false, and ``fcvt.l.d``
truncates toward zero with saturation.
"""

from __future__ import annotations

import math
from typing import Callable

from repro._util import to_signed64, to_unsigned64
from repro.cpu.arch import ArchState, TargetMemory
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op

__all__ = [
    "execute",
    "effective_address",
    "do_load",
    "do_store",
    "do_amo",
    "ExecOutcome",
    "NEXT",
]

#: Sentinel meaning "fall through to pc + 8".
NEXT = -1

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ExecOutcome:
    """Result flags of register-only execution."""

    __slots__ = ("next_pc", "is_syscall", "is_halt", "taken")

    def __init__(self, next_pc: int, *, is_syscall: bool = False, is_halt: bool = False, taken: bool = False) -> None:
        self.next_pc = next_pc
        self.is_syscall = is_syscall
        self.is_halt = is_halt
        self.taken = taken


def effective_address(state: ArchState, insn: Instruction) -> int:
    """Address generation for loads, stores and AMOs (``rs1 + imm``)."""
    return to_signed64(state.x[insn.rs1] + insn.imm)


def do_load(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Apply the functional effect of a load at the current simulated moment."""
    if insn.op is Op.LD:
        state.set_x(insn.rd, mem.load_word(addr))
    elif insn.op is Op.FLD:
        state.f[insn.rd] = mem.load_float(addr)
    else:
        raise AssertionError(f"do_load on non-load {insn.op.name}")


def do_store(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Apply the functional effect of a store."""
    if insn.op is Op.SD:
        mem.store_word(addr, state.x[insn.rs2])
    elif insn.op is Op.FSD:
        mem.store_float(addr, state.f[insn.rs2])
    else:
        raise AssertionError(f"do_store on non-store {insn.op.name}")


def do_amo(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Atomic read-modify-write: old value to ``rd``, new value to memory.

    Atomicity holds by construction in the sequential engine and is enforced
    by the emulation-layer lock in the threaded engine.
    """
    old = mem.load_word(addr)
    if insn.op is Op.AMOSWAP:
        new = state.x[insn.rs2]
    elif insn.op is Op.AMOADD:
        new = to_signed64(old + state.x[insn.rs2])
    else:
        raise AssertionError(f"do_amo on non-AMO {insn.op.name}")
    mem.store_word(addr, new)
    state.set_x(insn.rd, old)


def _fsqrt(v: float) -> float:
    return math.sqrt(v) if v >= 0.0 else math.nan


def _fcvt_l_d(v: float) -> int:
    if math.isnan(v):
        return 0
    if v >= _INT64_MAX:
        return _INT64_MAX
    if v <= _INT64_MIN:
        return _INT64_MIN
    return int(v)


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    # C-style truncation toward zero.
    q = abs(a) // abs(b)
    return to_signed64(-q if (a < 0) != (b < 0) else q)


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    r = abs(a) % abs(b)
    return to_signed64(-r if a < 0 else r)


def execute(
    state: ArchState,
    insn: Instruction,
    mem: TargetMemory | None = None,
) -> ExecOutcome:
    """Execute the register-visible semantics of *insn*.

    Memory instructions must go through :func:`effective_address` plus
    :func:`do_load`/:func:`do_store`/:func:`do_amo` instead; passing one here
    with *mem* applies address generation *and* the memory effect immediately
    (convenience path for the pure functional interpreter and tests).

    Returns an :class:`ExecOutcome`; ``next_pc == NEXT`` means fall-through.
    Syscalls (``ecall``) do not advance the PC themselves — the system layer
    decides (it may re-execute, e.g. for a blocking lock).
    """
    op = insn.op
    x = state.x
    f = state.f

    if op is Op.ADD:
        state.set_x(insn.rd, x[insn.rs1] + x[insn.rs2])
    elif op is Op.SUB:
        state.set_x(insn.rd, x[insn.rs1] - x[insn.rs2])
    elif op is Op.MUL:
        state.set_x(insn.rd, x[insn.rs1] * x[insn.rs2])
    elif op is Op.DIV:
        state.set_x(insn.rd, _div(x[insn.rs1], x[insn.rs2]))
    elif op is Op.REM:
        state.set_x(insn.rd, _rem(x[insn.rs1], x[insn.rs2]))
    elif op is Op.AND:
        state.set_x(insn.rd, x[insn.rs1] & x[insn.rs2])
    elif op is Op.OR:
        state.set_x(insn.rd, x[insn.rs1] | x[insn.rs2])
    elif op is Op.XOR:
        state.set_x(insn.rd, x[insn.rs1] ^ x[insn.rs2])
    elif op is Op.SLL:
        state.set_x(insn.rd, x[insn.rs1] << (x[insn.rs2] & 63))
    elif op is Op.SRL:
        state.set_x(insn.rd, to_unsigned64(x[insn.rs1]) >> (x[insn.rs2] & 63))
    elif op is Op.SRA:
        state.set_x(insn.rd, x[insn.rs1] >> (x[insn.rs2] & 63))
    elif op is Op.SLT:
        state.set_x(insn.rd, int(x[insn.rs1] < x[insn.rs2]))
    elif op is Op.SLTU:
        state.set_x(insn.rd, int(to_unsigned64(x[insn.rs1]) < to_unsigned64(x[insn.rs2])))
    elif op is Op.ADDI:
        state.set_x(insn.rd, x[insn.rs1] + insn.imm)
    elif op is Op.ANDI:
        state.set_x(insn.rd, x[insn.rs1] & insn.imm)
    elif op is Op.ORI:
        state.set_x(insn.rd, x[insn.rs1] | insn.imm)
    elif op is Op.XORI:
        state.set_x(insn.rd, x[insn.rs1] ^ insn.imm)
    elif op is Op.SLLI:
        state.set_x(insn.rd, x[insn.rs1] << (insn.imm & 63))
    elif op is Op.SRLI:
        state.set_x(insn.rd, to_unsigned64(x[insn.rs1]) >> (insn.imm & 63))
    elif op is Op.SRAI:
        state.set_x(insn.rd, x[insn.rs1] >> (insn.imm & 63))
    elif op is Op.SLTI:
        state.set_x(insn.rd, int(x[insn.rs1] < insn.imm))
    elif op is Op.LUI:
        state.set_x(insn.rd, insn.imm << 32)
    elif op in (Op.LD, Op.FLD):
        if mem is None:
            raise ValueError("memory instruction executed without a TargetMemory")
        do_load(state, insn, mem, effective_address(state, insn))
    elif op in (Op.SD, Op.FSD):
        if mem is None:
            raise ValueError("memory instruction executed without a TargetMemory")
        do_store(state, insn, mem, effective_address(state, insn))
    elif op in (Op.AMOSWAP, Op.AMOADD):
        if mem is None:
            raise ValueError("memory instruction executed without a TargetMemory")
        do_amo(state, insn, mem, effective_address(state, insn))
    elif op is Op.BEQ:
        if x[insn.rs1] == x[insn.rs2]:
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.BNE:
        if x[insn.rs1] != x[insn.rs2]:
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.BLT:
        if x[insn.rs1] < x[insn.rs2]:
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.BGE:
        if x[insn.rs1] >= x[insn.rs2]:
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.BLTU:
        if to_unsigned64(x[insn.rs1]) < to_unsigned64(x[insn.rs2]):
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.BGEU:
        if to_unsigned64(x[insn.rs1]) >= to_unsigned64(x[insn.rs2]):
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.JAL:
        state.set_x(insn.rd, state.pc + INSTRUCTION_BYTES)
        return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
    elif op is Op.JALR:
        target = to_signed64(x[insn.rs1] + insn.imm)
        state.set_x(insn.rd, state.pc + INSTRUCTION_BYTES)
        return ExecOutcome(target, taken=True)
    elif op is Op.FADD:
        f[insn.rd] = f[insn.rs1] + f[insn.rs2]
    elif op is Op.FSUB:
        f[insn.rd] = f[insn.rs1] - f[insn.rs2]
    elif op is Op.FMUL:
        f[insn.rd] = f[insn.rs1] * f[insn.rs2]
    elif op is Op.FDIV:
        f[insn.rd] = f[insn.rs1] / f[insn.rs2] if f[insn.rs2] != 0.0 else math.copysign(math.inf, f[insn.rs1]) if f[insn.rs1] != 0.0 else math.nan
    elif op is Op.FMIN:
        f[insn.rd] = min(f[insn.rs1], f[insn.rs2])
    elif op is Op.FMAX:
        f[insn.rd] = max(f[insn.rs1], f[insn.rs2])
    elif op is Op.FSQRT:
        f[insn.rd] = _fsqrt(f[insn.rs1])
    elif op is Op.FNEG:
        f[insn.rd] = -f[insn.rs1]
    elif op is Op.FABS:
        f[insn.rd] = abs(f[insn.rs1])
    elif op is Op.FMV:
        f[insn.rd] = f[insn.rs1]
    elif op is Op.FSIN:
        f[insn.rd] = math.sin(f[insn.rs1])
    elif op is Op.FCOS:
        f[insn.rd] = math.cos(f[insn.rs1])
    elif op is Op.FEQ:
        state.set_x(insn.rd, int(f[insn.rs1] == f[insn.rs2]))
    elif op is Op.FLT:
        state.set_x(insn.rd, int(f[insn.rs1] < f[insn.rs2]))
    elif op is Op.FLE:
        state.set_x(insn.rd, int(f[insn.rs1] <= f[insn.rs2]))
    elif op is Op.FCVT_D_L:
        f[insn.rd] = float(x[insn.rs1])
    elif op is Op.FCVT_L_D:
        state.set_x(insn.rd, _fcvt_l_d(f[insn.rs1]))
    elif op is Op.FMV_D_X:
        import struct

        f[insn.rd] = struct.unpack("<d", struct.pack("<q", x[insn.rs1]))[0]
    elif op is Op.FMV_X_D:
        import struct

        state.set_x(insn.rd, struct.unpack("<q", struct.pack("<d", f[insn.rs1]))[0])
    elif op is Op.ECALL:
        return ExecOutcome(state.pc, is_syscall=True)
    elif op is Op.HALT:
        state.halted = True
        return ExecOutcome(state.pc, is_halt=True)
    elif op is Op.NOPOP:
        pass
    else:  # pragma: no cover - exhaustive over Op
        raise AssertionError(f"unhandled opcode {op.name}")
    return ExecOutcome(NEXT)
