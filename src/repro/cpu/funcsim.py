"""Functional execution of SPISA instructions.

The timing cores (:mod:`repro.cpu.inorder`, :mod:`repro.cpu.ooo`) decide
*when* each instruction executes; this module defines *what* it does.  The
split mirrors SlackSim's modification of SimpleScalar: "register values are
fetched just before execution ... SlackSim executes each instruction when it
reaches an execution unit" (paper §2.2).  Hence the API separates address
generation (:func:`effective_address`), the functional memory touch
(:func:`do_load` / :func:`do_store` / :func:`do_amo`) and register-only
execution (:func:`execute`), so cores can place each at the correct simulated
cycle.

Arithmetic follows RISC-V-style conventions: 64-bit two's-complement wraparound,
``div/rem`` by zero produce ``-1`` / the dividend, shifts use the low 6 bits
of the shift amount, float compares with NaN are false, and ``fcvt.l.d``
truncates toward zero with saturation.
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from repro._util import to_signed64, to_unsigned64
from repro.cpu.arch import ArchState, TargetMemory
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op

__all__ = [
    "execute",
    "effective_address",
    "do_load",
    "do_store",
    "do_amo",
    "ExecOutcome",
    "NEXT",
]

#: Sentinel meaning "fall through to pc + 8".
NEXT = -1

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ExecOutcome:
    """Result flags of register-only execution."""

    __slots__ = ("next_pc", "is_syscall", "is_halt", "taken")

    def __init__(self, next_pc: int, *, is_syscall: bool = False, is_halt: bool = False, taken: bool = False) -> None:
        self.next_pc = next_pc
        self.is_syscall = is_syscall
        self.is_halt = is_halt
        self.taken = taken


def effective_address(state: ArchState, insn: Instruction) -> int:
    """Address generation for loads, stores and AMOs (``rs1 + imm``)."""
    return to_signed64(state.x[insn.rs1] + insn.imm)


def do_load(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Apply the functional effect of a load at the current simulated moment."""
    if insn.op is Op.LD:
        state.set_x(insn.rd, mem.load_word(addr))
    elif insn.op is Op.FLD:
        state.f[insn.rd] = mem.load_float(addr)
    else:
        raise AssertionError(f"do_load on non-load {insn.op.name}")


def do_store(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Apply the functional effect of a store."""
    if insn.op is Op.SD:
        mem.store_word(addr, state.x[insn.rs2])
    elif insn.op is Op.FSD:
        mem.store_float(addr, state.f[insn.rs2])
    else:
        raise AssertionError(f"do_store on non-store {insn.op.name}")


def do_amo(state: ArchState, insn: Instruction, mem: TargetMemory, addr: int) -> None:
    """Atomic read-modify-write: old value to ``rd``, new value to memory.

    Atomicity holds by construction in the sequential engine and is enforced
    by the emulation-layer lock in the threaded engine.
    """
    old = mem.load_word(addr)
    if insn.op is Op.AMOSWAP:
        new = state.x[insn.rs2]
    elif insn.op is Op.AMOADD:
        new = to_signed64(old + state.x[insn.rs2])
    else:
        raise AssertionError(f"do_amo on non-AMO {insn.op.name}")
    mem.store_word(addr, new)
    state.set_x(insn.rd, old)


def _fsqrt(v: float) -> float:
    return math.sqrt(v) if v >= 0.0 else math.nan


def _fcvt_l_d(v: float) -> int:
    if math.isnan(v):
        return 0
    if v >= _INT64_MAX:
        return _INT64_MAX
    if v <= _INT64_MIN:
        return _INT64_MIN
    return int(v)


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    # C-style truncation toward zero.
    q = abs(a) // abs(b)
    return to_signed64(-q if (a < 0) != (b < 0) else q)


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    r = abs(a) % abs(b)
    return to_signed64(-r if a < 0 else r)


#: Shared fall-through outcome: callers only read ExecOutcome fields, so all
#: non-branch instructions can return one preallocated instance.
_FALLTHROUGH = ExecOutcome(NEXT)

# Register-only semantics as an opcode-indexed dispatch table: handlers take
# (state, insn, mem) and return an ExecOutcome (or None for fall-through).
# ``execute`` indexes the table with int(op), replacing the former ~50-way
# if/elif chain with one list lookup per instruction.
_DISPATCH: list = [None] * 256


def _op(opcode: Op):
    def register(fn):
        _DISPATCH[int(opcode)] = fn
        return fn

    return register


def _branch(opcode: Op, cond):
    def handler(state, insn, mem, _cond=cond):
        if _cond(state.x[insn.rs1], state.x[insn.rs2]):
            return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)
        return None

    _DISPATCH[int(opcode)] = handler


def _need_mem(mem: TargetMemory | None) -> TargetMemory:
    if mem is None:
        raise ValueError("memory instruction executed without a TargetMemory")
    return mem


@_op(Op.ADD)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] + state.x[insn.rs2])


@_op(Op.SUB)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] - state.x[insn.rs2])


@_op(Op.MUL)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] * state.x[insn.rs2])


@_op(Op.DIV)
def _(state, insn, mem):
    state.set_x(insn.rd, _div(state.x[insn.rs1], state.x[insn.rs2]))


@_op(Op.REM)
def _(state, insn, mem):
    state.set_x(insn.rd, _rem(state.x[insn.rs1], state.x[insn.rs2]))


@_op(Op.AND)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] & state.x[insn.rs2])


@_op(Op.OR)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] | state.x[insn.rs2])


@_op(Op.XOR)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] ^ state.x[insn.rs2])


@_op(Op.SLL)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] << (state.x[insn.rs2] & 63))


@_op(Op.SRL)
def _(state, insn, mem):
    state.set_x(insn.rd, to_unsigned64(state.x[insn.rs1]) >> (state.x[insn.rs2] & 63))


@_op(Op.SRA)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] >> (state.x[insn.rs2] & 63))


@_op(Op.SLT)
def _(state, insn, mem):
    state.set_x(insn.rd, int(state.x[insn.rs1] < state.x[insn.rs2]))


@_op(Op.SLTU)
def _(state, insn, mem):
    state.set_x(insn.rd, int(to_unsigned64(state.x[insn.rs1]) < to_unsigned64(state.x[insn.rs2])))


@_op(Op.ADDI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] + insn.imm)


@_op(Op.ANDI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] & insn.imm)


@_op(Op.ORI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] | insn.imm)


@_op(Op.XORI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] ^ insn.imm)


@_op(Op.SLLI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] << (insn.imm & 63))


@_op(Op.SRLI)
def _(state, insn, mem):
    state.set_x(insn.rd, to_unsigned64(state.x[insn.rs1]) >> (insn.imm & 63))


@_op(Op.SRAI)
def _(state, insn, mem):
    state.set_x(insn.rd, state.x[insn.rs1] >> (insn.imm & 63))


@_op(Op.SLTI)
def _(state, insn, mem):
    state.set_x(insn.rd, int(state.x[insn.rs1] < insn.imm))


@_op(Op.LUI)
def _(state, insn, mem):
    state.set_x(insn.rd, insn.imm << 32)


@_op(Op.LD)
@_op(Op.FLD)
def _(state, insn, mem):
    do_load(state, insn, _need_mem(mem), effective_address(state, insn))


@_op(Op.SD)
@_op(Op.FSD)
def _(state, insn, mem):
    do_store(state, insn, _need_mem(mem), effective_address(state, insn))


@_op(Op.AMOSWAP)
@_op(Op.AMOADD)
def _(state, insn, mem):
    do_amo(state, insn, _need_mem(mem), effective_address(state, insn))


_branch(Op.BEQ, lambda a, b: a == b)
_branch(Op.BNE, lambda a, b: a != b)
_branch(Op.BLT, lambda a, b: a < b)
_branch(Op.BGE, lambda a, b: a >= b)
_branch(Op.BLTU, lambda a, b: to_unsigned64(a) < to_unsigned64(b))
_branch(Op.BGEU, lambda a, b: to_unsigned64(a) >= to_unsigned64(b))


@_op(Op.JAL)
def _(state, insn, mem):
    state.set_x(insn.rd, state.pc + INSTRUCTION_BYTES)
    return ExecOutcome(to_signed64(state.pc + insn.imm), taken=True)


@_op(Op.JALR)
def _(state, insn, mem):
    target = to_signed64(state.x[insn.rs1] + insn.imm)
    state.set_x(insn.rd, state.pc + INSTRUCTION_BYTES)
    return ExecOutcome(target, taken=True)


@_op(Op.FADD)
def _(state, insn, mem):
    state.f[insn.rd] = state.f[insn.rs1] + state.f[insn.rs2]


@_op(Op.FSUB)
def _(state, insn, mem):
    state.f[insn.rd] = state.f[insn.rs1] - state.f[insn.rs2]


@_op(Op.FMUL)
def _(state, insn, mem):
    state.f[insn.rd] = state.f[insn.rs1] * state.f[insn.rs2]


@_op(Op.FDIV)
def _(state, insn, mem):
    a, b = state.f[insn.rs1], state.f[insn.rs2]
    if b != 0.0:
        state.f[insn.rd] = a / b
    else:
        state.f[insn.rd] = math.copysign(math.inf, a) if a != 0.0 else math.nan


@_op(Op.FMIN)
def _(state, insn, mem):
    state.f[insn.rd] = min(state.f[insn.rs1], state.f[insn.rs2])


@_op(Op.FMAX)
def _(state, insn, mem):
    state.f[insn.rd] = max(state.f[insn.rs1], state.f[insn.rs2])


@_op(Op.FSQRT)
def _(state, insn, mem):
    state.f[insn.rd] = _fsqrt(state.f[insn.rs1])


@_op(Op.FNEG)
def _(state, insn, mem):
    state.f[insn.rd] = -state.f[insn.rs1]


@_op(Op.FABS)
def _(state, insn, mem):
    state.f[insn.rd] = abs(state.f[insn.rs1])


@_op(Op.FMV)
def _(state, insn, mem):
    state.f[insn.rd] = state.f[insn.rs1]


@_op(Op.FSIN)
def _(state, insn, mem):
    state.f[insn.rd] = math.sin(state.f[insn.rs1])


@_op(Op.FCOS)
def _(state, insn, mem):
    state.f[insn.rd] = math.cos(state.f[insn.rs1])


@_op(Op.FEQ)
def _(state, insn, mem):
    state.set_x(insn.rd, int(state.f[insn.rs1] == state.f[insn.rs2]))


@_op(Op.FLT)
def _(state, insn, mem):
    state.set_x(insn.rd, int(state.f[insn.rs1] < state.f[insn.rs2]))


@_op(Op.FLE)
def _(state, insn, mem):
    state.set_x(insn.rd, int(state.f[insn.rs1] <= state.f[insn.rs2]))


@_op(Op.FCVT_D_L)
def _(state, insn, mem):
    state.f[insn.rd] = float(state.x[insn.rs1])


@_op(Op.FCVT_L_D)
def _(state, insn, mem):
    state.set_x(insn.rd, _fcvt_l_d(state.f[insn.rs1]))


@_op(Op.FMV_D_X)
def _(state, insn, mem):
    state.f[insn.rd] = struct.unpack("<d", struct.pack("<q", state.x[insn.rs1]))[0]


@_op(Op.FMV_X_D)
def _(state, insn, mem):
    state.set_x(insn.rd, struct.unpack("<q", struct.pack("<d", state.f[insn.rs1]))[0])


@_op(Op.ECALL)
def _(state, insn, mem):
    return ExecOutcome(state.pc, is_syscall=True)


@_op(Op.HALT)
def _(state, insn, mem):
    state.halted = True
    return ExecOutcome(state.pc, is_halt=True)


@_op(Op.NOPOP)
def _(state, insn, mem):
    return None


def execute(
    state: ArchState,
    insn: Instruction,
    mem: TargetMemory | None = None,
) -> ExecOutcome:
    """Execute the register-visible semantics of *insn*.

    Memory instructions must go through :func:`effective_address` plus
    :func:`do_load`/:func:`do_store`/:func:`do_amo` instead; passing one here
    with *mem* applies address generation *and* the memory effect immediately
    (convenience path for the pure functional interpreter and tests).

    Returns an :class:`ExecOutcome`; ``next_pc == NEXT`` means fall-through.
    Syscalls (``ecall``) do not advance the PC themselves — the system layer
    decides (it may re-execute, e.g. for a blocking lock).
    """
    handler = _DISPATCH[insn.op]
    if handler is None:  # pragma: no cover - exhaustive over Op
        raise AssertionError(f"unhandled opcode {insn.op.name}")
    outcome = handler(state, insn, mem)
    return outcome if outcome is not None else _FALLTHROUGH
