"""Predecoded closure-dispatch execution layer (DESIGN.md §6).

:mod:`repro.cpu.funcsim` interprets each instruction from scratch on every
execution: fetch the :class:`Instruction`, index the dispatch table with its
opcode, then chase ``insn.rd`` / ``insn.rs1`` / ``insn.imm`` attributes
inside the handler.  That per-step work is pure interpretation tax — the
operands of a given text word never change.  This module pays it **once per
program**: at load time every text word is decoded into a *specialized
closure* (classic threaded code) that captures its register indices and
immediates as cell variables, so executing the instruction is a single
Python call operating directly on the register lists.

Three consumers share the layer (all keyed by ``dispatch="predecoded"``):

* the pure functional interpreter (:mod:`repro.cpu.interp`), which also uses
  *superblocks* — straight-line runs of ALU/memory instructions, optionally
  terminated by a branch or jump, compiled into one Python function (the
  operations are inlined as generated source, helpers bound as default
  arguments) so a whole loop body executes per Python call;
* the in-order timing core (:mod:`repro.cpu.inorder`);
* the out-of-order core's architectural backbone (:mod:`repro.cpu.ooo`).

The timing cores only swap the *execution* of each instruction — fetch
order, latencies, cache/memory moments and syscall handling are untouched,
so the golden digests (``tests/core/goldens/``) are bit-identical between
``dispatch="predecoded"`` and the ``dispatch="oracle"`` fallback, which
keeps :func:`repro.cpu.funcsim.execute` as the differential-testing oracle
(the same pattern as PR 1's ``stepping="single"``).

Closure calling convention: ``run(x, f)`` where *x*/*f* are the caller's
``ArchState.x`` / ``ArchState.f`` register lists (hoisted out of the hot
loop).  Register-only closures return ``None``; control-transfer closures
return the absolute target PC (or ``None`` for a not-taken branch).  Memory
instructions get an address closure ``ea(x) -> addr`` plus a functional
closure ``apply(x, f, mem, addr)``; syscalls, halts and AMOs keep their
existing oracle paths (they are rare and interact with the system layer).
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from repro._util import to_signed64
from repro.cpu.funcsim import _div, _fcvt_l_d, _fsqrt, _rem
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import OPINFO, Op
from repro.isa.program import TEXT_BASE, Program

__all__ = [
    "PredecodedProgram",
    "TimingBlocks",
    "predecode_program",
    "predecode_instruction",
    "timing_blocks",
    "K_SIMPLE",
    "K_BRANCH",
    "K_JUMP",
    "K_LOAD",
    "K_STORE",
    "K_AMO",
    "K_ECALL",
    "K_HALT",
    "MIN_SUPERBLOCK",
]

# Instruction kinds (dense ints so consumers can compare with ==).
K_SIMPLE = 0  # register-only, falls through:      run(x, f) -> None
K_BRANCH = 1  # conditional branch:                run(x, f) -> int | None
K_JUMP = 2    # jal/jalr, always taken:            run(x, f) -> int
K_LOAD = 3    # ld/fld:    ea(x) -> addr, apply(x, f, mem, addr)
K_STORE = 4   # sd/fsd:    ea(x) -> addr, apply(x, f, mem, addr)
K_AMO = 5     # amoswap/amoadd: ea + apply (engines use their oracle path)
K_ECALL = 6   # system layer decides; no closure
K_HALT = 7    # no closure

#: Minimum straight-line run length worth compiling into a superblock.
MIN_SUPERBLOCK = 2

_MASK = (1 << 64) - 1
_HALF = 1 << 63
_TWO64 = 1 << 64

_pack = struct.pack
_unpack = struct.unpack


def _nop_run(x, f):
    return None


# --------------------------------------------------------------------------
# Closure builders, one per opcode.  Each takes the decoded fields (plus the
# instruction's own pc for control transfers) and returns the specialized
# run closure.  Builders write ``x[rd]`` directly — the x0-hardwired-to-zero
# invariant is specialized away: writes to x0 become no-ops at build time.
# Arithmetic wraps exactly like ArchState.set_x (to_signed64): the predecoded
# state trajectory is bit-identical to the oracle's.

_BUILDERS: dict[Op, Callable] = {}


def _spec(op: Op):
    def register(build):
        _BUILDERS[op] = build
        return build

    return register


@_spec(Op.ADD)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] + x[rs2]) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.SUB)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] - x[rs2]) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.MUL)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] * x[rs2]) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.DIV)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = _div(x[rs1], x[rs2])

    return run


@_spec(Op.REM)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = _rem(x[rs1], x[rs2])

    return run


@_spec(Op.AND)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] & x[rs2]

    return run


@_spec(Op.OR)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] | x[rs2]

    return run


@_spec(Op.XOR)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] ^ x[rs2]

    return run


@_spec(Op.SLL)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] << (x[rs2] & 63)) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.SRL)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] & _MASK) >> (x[rs2] & 63)
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.SRA)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] >> (x[rs2] & 63)

    return run


@_spec(Op.SLT)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if x[rs1] < x[rs2] else 0

    return run


@_spec(Op.SLTU)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if (x[rs1] & _MASK) < (x[rs2] & _MASK) else 0

    return run


@_spec(Op.ADDI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        v = (x[rs1] + imm) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.ANDI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] & imm

    return run


@_spec(Op.ORI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] | imm

    return run


@_spec(Op.XORI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = x[rs1] ^ imm

    return run


@_spec(Op.SLLI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run
    sh = imm & 63

    def run(x, f):
        v = (x[rs1] << sh) & _MASK
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.SRLI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run
    sh = imm & 63

    def run(x, f):
        v = (x[rs1] & _MASK) >> sh
        x[rd] = v - _TWO64 if v >= _HALF else v

    return run


@_spec(Op.SRAI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run
    sh = imm & 63

    def run(x, f):
        x[rd] = x[rs1] >> sh

    return run


@_spec(Op.SLTI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if x[rs1] < imm else 0

    return run


@_spec(Op.LUI)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run
    value = to_signed64(imm << 32)

    def run(x, f):
        x[rd] = value

    return run


# ------------------------------------------------------------ control flow
def _branch(op: Op, cond):
    @_spec(op)
    def _(rd, rs1, rs2, imm, pc, _cond=cond):
        target = to_signed64(pc + imm)

        def run(x, f):
            return target if _cond(x[rs1], x[rs2]) else None

        return run


_branch(Op.BEQ, lambda a, b: a == b)
_branch(Op.BNE, lambda a, b: a != b)
_branch(Op.BLT, lambda a, b: a < b)
_branch(Op.BGE, lambda a, b: a >= b)
_branch(Op.BLTU, lambda a, b: (a & _MASK) < (b & _MASK))
_branch(Op.BGEU, lambda a, b: (a & _MASK) >= (b & _MASK))


@_spec(Op.JAL)
def _(rd, rs1, rs2, imm, pc):
    target = to_signed64(pc + imm)
    link = pc + INSTRUCTION_BYTES
    if rd == 0:

        def run(x, f):
            return target

    else:

        def run(x, f):
            x[rd] = link
            return target

    return run


@_spec(Op.JALR)
def _(rd, rs1, rs2, imm, pc):
    link = pc + INSTRUCTION_BYTES
    if rd == 0:

        def run(x, f):
            v = (x[rs1] + imm) & _MASK
            return v - _TWO64 if v >= _HALF else v

    else:
        # Target is computed before the link write (oracle order: rs1 may
        # alias rd).
        def run(x, f):
            v = (x[rs1] + imm) & _MASK
            x[rd] = link
            return v - _TWO64 if v >= _HALF else v

    return run


# -------------------------------------------------------------- float ops
@_spec(Op.FADD)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = f[rs1] + f[rs2]

    return run


@_spec(Op.FSUB)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = f[rs1] - f[rs2]

    return run


@_spec(Op.FMUL)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = f[rs1] * f[rs2]

    return run


@_spec(Op.FDIV)
def _(rd, rs1, rs2, imm, pc):
    _inf, _nan, _copysign = math.inf, math.nan, math.copysign

    def run(x, f):
        a = f[rs1]
        b = f[rs2]
        if b != 0.0:
            f[rd] = a / b
        else:
            f[rd] = _copysign(_inf, a) if a != 0.0 else _nan

    return run


@_spec(Op.FMIN)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = min(f[rs1], f[rs2])

    return run


@_spec(Op.FMAX)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = max(f[rs1], f[rs2])

    return run


@_spec(Op.FSQRT)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = _fsqrt(f[rs1])

    return run


@_spec(Op.FNEG)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = -f[rs1]

    return run


@_spec(Op.FABS)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = abs(f[rs1])

    return run


@_spec(Op.FMV)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = f[rs1]

    return run


@_spec(Op.FSIN)
def _(rd, rs1, rs2, imm, pc):
    _sin = math.sin

    def run(x, f):
        f[rd] = _sin(f[rs1])

    return run


@_spec(Op.FCOS)
def _(rd, rs1, rs2, imm, pc):
    _cos = math.cos

    def run(x, f):
        f[rd] = _cos(f[rs1])

    return run


@_spec(Op.FEQ)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if f[rs1] == f[rs2] else 0

    return run


@_spec(Op.FLT)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if f[rs1] < f[rs2] else 0

    return run


@_spec(Op.FLE)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = 1 if f[rs1] <= f[rs2] else 0

    return run


@_spec(Op.FCVT_D_L)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = float(x[rs1])

    return run


@_spec(Op.FCVT_L_D)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = _fcvt_l_d(f[rs1])

    return run


@_spec(Op.FMV_D_X)
def _(rd, rs1, rs2, imm, pc):
    def run(x, f):
        f[rd] = _unpack("<d", _pack("<q", x[rs1]))[0]

    return run


@_spec(Op.FMV_X_D)
def _(rd, rs1, rs2, imm, pc):
    if rd == 0:
        return _nop_run

    def run(x, f):
        x[rd] = _unpack("<q", _pack("<d", f[rs1]))[0]

    return run


@_spec(Op.NOPOP)
def _(rd, rs1, rs2, imm, pc):
    return _nop_run


# ---------------------------------------------------------- memory closures
def _build_ea(rs1: int, imm: int):
    """Effective-address closure: to_signed64(x[rs1] + imm), specialized."""
    if imm == 0:

        def ea(x):
            return x[rs1]

    else:

        def ea(x):
            v = (x[rs1] + imm) & _MASK
            return v - _TWO64 if v >= _HALF else v

    return ea


def _build_apply(insn: Instruction):
    """Functional memory effect at a precomputed address (interp path)."""
    op, rd, rs2 = insn.op, insn.rd, insn.rs2
    if op is Op.LD:
        if rd == 0:
            # x0 load: the access (and any fault) still happens.
            def apply(x, f, mem, addr):
                mem.load_word(addr)

        else:

            def apply(x, f, mem, addr):
                x[rd] = mem.load_word(addr)

        return apply
    if op is Op.FLD:

        def apply(x, f, mem, addr):
            f[rd] = mem.load_float(addr)

        return apply
    if op is Op.SD:

        def apply(x, f, mem, addr):
            mem.store_word(addr, x[rs2])

        return apply
    if op is Op.FSD:

        def apply(x, f, mem, addr):
            mem.store_float(addr, f[rs2])

        return apply
    if op is Op.AMOSWAP:

        def apply(x, f, mem, addr):
            old = mem.load_word(addr)
            mem.store_word(addr, x[rs2])
            if rd:
                x[rd] = old

        return apply
    if op is Op.AMOADD:

        def apply(x, f, mem, addr):
            old = mem.load_word(addr)
            mem.store_word(addr, old + x[rs2])
            if rd:
                x[rd] = old

        return apply
    raise AssertionError(f"no apply closure for {op.name}")


_KIND_BY_OP: dict[Op, int] = {}
for _op_key, _info in OPINFO.items():
    if _info.is_amo:
        _KIND_BY_OP[_op_key] = K_AMO
    elif _info.is_load:
        _KIND_BY_OP[_op_key] = K_LOAD
    elif _info.is_store:
        _KIND_BY_OP[_op_key] = K_STORE
    elif _op_key in (Op.JAL, Op.JALR):
        _KIND_BY_OP[_op_key] = K_JUMP
    elif _info.is_branch:
        _KIND_BY_OP[_op_key] = K_BRANCH
    elif _op_key is Op.ECALL:
        _KIND_BY_OP[_op_key] = K_ECALL
    elif _op_key is Op.HALT:
        _KIND_BY_OP[_op_key] = K_HALT
    else:
        _KIND_BY_OP[_op_key] = K_SIMPLE


def predecode_instruction(insn: Instruction, pc: int):
    """Predecode one instruction: ``(kind, run, ea, apply)``.

    ``run`` is ``None`` for memory/syscall/halt kinds; ``ea``/``apply`` are
    ``None`` for everything except memory kinds.
    """
    kind = _KIND_BY_OP[insn.op]
    if kind in (K_LOAD, K_STORE, K_AMO):
        return kind, None, _build_ea(insn.rs1, insn.imm), _build_apply(insn)
    if kind in (K_ECALL, K_HALT):
        return kind, None, None, None
    run = _BUILDERS[insn.op](insn.rd, insn.rs1, insn.rs2, insn.imm, pc)
    return kind, run, None, None


# ------------------------------------------------------- superblock codegen
#
# Superblocks serve only the functional interpreter, where every memory
# effect is immediate — so a block may contain loads/stores/AMOs alongside
# ALU work and end with one branch/jump.  Each block is compiled to Python
# source with the instruction semantics inlined (no per-instruction call),
# and non-inlinable helpers (_div, math functions, struct pack) bound as
# default arguments so they resolve as locals.  The generated function has
# signature ``block(x, f, mem) -> int | None``: the branch/jump target when
# the terminator is taken, else ``None`` (fall through past the block).
#
# Caveat: a TargetFault raised mid-block leaves ``state.pc`` and the
# instruction count at the block entry (the per-instruction paths pinpoint
# the faulting instruction); correct programs never observe the difference.

_ELIGIBLE_BODY = (K_SIMPLE, K_LOAD, K_STORE, K_AMO)
_TERMINATORS = (K_BRANCH, K_JUMP)

_BRANCH_EXPR = {
    Op.BEQ: "x[{a}] == x[{b}]",
    Op.BNE: "x[{a}] != x[{b}]",
    Op.BLT: "x[{a}] < x[{b}]",
    Op.BGE: "x[{a}] >= x[{b}]",
    Op.BLTU: "(x[{a}] & M) < (x[{b}] & M)",
    Op.BGEU: "(x[{a}] & M) >= (x[{b}] & M)",
}


def _addr_lines(a: int, imm: int, lines: list) -> str:
    """Emit the wrapped effective-address computation; return its expression."""
    if imm == 0:
        return f"x[{a}]"
    lines.append(f"v = (x[{a}] + {imm}) & M")
    lines.append("v = v - T if v >= H else v")
    return "v"


def _emit_insn(insn: Instruction, pc: int, lines: list, binds: dict) -> None:
    """Append inline source for one body instruction (mutates lines/binds)."""
    op = insn.op
    d, a, b, imm = insn.rd, insn.rs1, insn.rs2, insn.imm
    if op in (Op.ADD, Op.SUB, Op.MUL):
        if d == 0:
            return
        sym = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*"}[op]
        lines.append(f"v = (x[{a}] {sym} x[{b}]) & M")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op is Op.DIV:
        if d == 0:
            return
        binds["_div"] = _div
        lines.append(f"x[{d}] = _div(x[{a}], x[{b}])")
    elif op is Op.REM:
        if d == 0:
            return
        binds["_rem"] = _rem
        lines.append(f"x[{d}] = _rem(x[{a}], x[{b}])")
    elif op in (Op.AND, Op.OR, Op.XOR):
        if d == 0:
            return
        sym = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}[op]
        lines.append(f"x[{d}] = x[{a}] {sym} x[{b}]")
    elif op is Op.SLL:
        if d == 0:
            return
        lines.append(f"v = (x[{a}] << (x[{b}] & 63)) & M")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op is Op.SRL:
        if d == 0:
            return
        lines.append(f"v = (x[{a}] & M) >> (x[{b}] & 63)")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op is Op.SRA:
        if d == 0:
            return
        lines.append(f"x[{d}] = x[{a}] >> (x[{b}] & 63)")
    elif op is Op.SLT:
        if d == 0:
            return
        lines.append(f"x[{d}] = 1 if x[{a}] < x[{b}] else 0")
    elif op is Op.SLTU:
        if d == 0:
            return
        lines.append(f"x[{d}] = 1 if (x[{a}] & M) < (x[{b}] & M) else 0")
    elif op is Op.ADDI:
        if d == 0:
            return
        lines.append(f"v = (x[{a}] + {imm}) & M")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op in (Op.ANDI, Op.ORI, Op.XORI):
        if d == 0:
            return
        sym = {Op.ANDI: "&", Op.ORI: "|", Op.XORI: "^"}[op]
        lines.append(f"x[{d}] = x[{a}] {sym} {imm}")
    elif op is Op.SLLI:
        if d == 0:
            return
        lines.append(f"v = (x[{a}] << {imm & 63}) & M")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op is Op.SRLI:
        if d == 0:
            return
        lines.append(f"v = (x[{a}] & M) >> {imm & 63}")
        lines.append(f"x[{d}] = v - T if v >= H else v")
    elif op is Op.SRAI:
        if d == 0:
            return
        lines.append(f"x[{d}] = x[{a}] >> {imm & 63}")
    elif op is Op.SLTI:
        if d == 0:
            return
        lines.append(f"x[{d}] = 1 if x[{a}] < {imm} else 0")
    elif op is Op.LUI:
        if d == 0:
            return
        lines.append(f"x[{d}] = {to_signed64(imm << 32)}")
    elif op is Op.LD:
        addr = _addr_lines(a, imm, lines)
        if d == 0:
            lines.append(f"mem.load_word({addr})")
        else:
            lines.append(f"x[{d}] = mem.load_word({addr})")
    elif op is Op.FLD:
        addr = _addr_lines(a, imm, lines)
        lines.append(f"f[{d}] = mem.load_float({addr})")
    elif op is Op.SD:
        addr = _addr_lines(a, imm, lines)
        lines.append(f"mem.store_word({addr}, x[{b}])")
    elif op is Op.FSD:
        addr = _addr_lines(a, imm, lines)
        lines.append(f"mem.store_float({addr}, f[{b}])")
    elif op in (Op.AMOSWAP, Op.AMOADD):
        addr = _addr_lines(a, imm, lines)
        if addr != "v":
            lines.append(f"v = {addr}")
        lines.append("old = mem.load_word(v)")
        if op is Op.AMOSWAP:
            lines.append(f"mem.store_word(v, x[{b}])")
        else:
            lines.append(f"mem.store_word(v, old + x[{b}])")
        if d:
            lines.append(f"x[{d}] = old")
    elif op in (Op.FADD, Op.FSUB, Op.FMUL):
        sym = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}[op]
        lines.append(f"f[{d}] = f[{a}] {sym} f[{b}]")
    elif op is Op.FDIV:
        binds["_copysign"] = math.copysign
        binds["_inf"] = math.inf
        binds["_nan"] = math.nan
        lines.append(f"fa = f[{a}]")
        lines.append(f"fb = f[{b}]")
        lines.append(
            f"f[{d}] = fa / fb if fb != 0.0 else "
            "(_copysign(_inf, fa) if fa != 0.0 else _nan)"
        )
    elif op is Op.FMIN:
        binds["_min"] = min
        lines.append(f"f[{d}] = _min(f[{a}], f[{b}])")
    elif op is Op.FMAX:
        binds["_max"] = max
        lines.append(f"f[{d}] = _max(f[{a}], f[{b}])")
    elif op is Op.FSQRT:
        binds["_fsqrt"] = _fsqrt
        lines.append(f"f[{d}] = _fsqrt(f[{a}])")
    elif op is Op.FNEG:
        lines.append(f"f[{d}] = -f[{a}]")
    elif op is Op.FABS:
        binds["_abs"] = abs
        lines.append(f"f[{d}] = _abs(f[{a}])")
    elif op is Op.FMV:
        lines.append(f"f[{d}] = f[{a}]")
    elif op is Op.FSIN:
        binds["_sin"] = math.sin
        lines.append(f"f[{d}] = _sin(f[{a}])")
    elif op is Op.FCOS:
        binds["_cos"] = math.cos
        lines.append(f"f[{d}] = _cos(f[{a}])")
    elif op in (Op.FEQ, Op.FLT, Op.FLE):
        if d == 0:
            return
        sym = {Op.FEQ: "==", Op.FLT: "<", Op.FLE: "<="}[op]
        lines.append(f"x[{d}] = 1 if f[{a}] {sym} f[{b}] else 0")
    elif op is Op.FCVT_D_L:
        binds["_float"] = float
        lines.append(f"f[{d}] = _float(x[{a}])")
    elif op is Op.FCVT_L_D:
        if d == 0:
            return
        binds["_fcvt_l_d"] = _fcvt_l_d
        lines.append(f"x[{d}] = _fcvt_l_d(f[{a}])")
    elif op is Op.FMV_D_X:
        binds["_pack"] = _pack
        binds["_unpack"] = _unpack
        lines.append(f'f[{d}] = _unpack("<d", _pack("<q", x[{a}]))[0]')
    elif op is Op.FMV_X_D:
        if d == 0:
            return
        binds["_pack"] = _pack
        binds["_unpack"] = _unpack
        lines.append(f'x[{d}] = _unpack("<q", _pack("<d", f[{a}]))[0]')
    elif op is Op.NOPOP:
        return
    else:  # pragma: no cover - body eligibility filters everything else
        raise AssertionError(f"no superblock template for {op.name}")


def _emit_terminator(insn: Instruction, pc: int, lines: list) -> None:
    """Append the return statement for a block-ending branch or jump."""
    op = insn.op
    d, a = insn.rd, insn.rs1
    if op is Op.JAL:
        if d:
            lines.append(f"x[{d}] = {pc + INSTRUCTION_BYTES}")
        lines.append(f"return {to_signed64(pc + insn.imm)}")
    elif op is Op.JALR:
        if insn.imm == 0:
            lines.append(f"v = x[{a}]")
        else:
            lines.append(f"v = (x[{a}] + {insn.imm}) & M")
            lines.append("v = v - T if v >= H else v")
        if d:
            lines.append(f"x[{d}] = {pc + INSTRUCTION_BYTES}")
        lines.append("return v")
    else:
        target = to_signed64(pc + insn.imm)
        cond = _BRANCH_EXPR[op].format(a=a, b=insn.rs2)
        lines.append(f"return {target} if {cond} else None")


def _compile_block(text, start: int, body_len: int, term_idx: int | None):
    """Compile instructions ``text[start : start+body_len]`` (plus optional
    terminator at *term_idx*) into one Python function."""
    binds: dict = {"M": _MASK, "H": _HALF, "T": _TWO64}
    lines: list[str] = []
    for k in range(start, start + body_len):
        _emit_insn(text[k], TEXT_BASE + k * INSTRUCTION_BYTES, lines, binds)
    if term_idx is not None:
        _emit_terminator(text[term_idx], TEXT_BASE + term_idx * INSTRUCTION_BYTES, lines)
    else:
        lines.append("return None")
    params = ", ".join(f"{name}={name}" for name in binds)
    src = f"def _block(x, f, mem, {params}):\n    " + "\n    ".join(lines) + "\n"
    namespace = dict(binds)
    exec(src, namespace)  # noqa: S102 - source is generated from trusted tables
    return namespace["_block"]


class PredecodedProgram:
    """Per-PC closure tables for one :class:`Program`.

    All fields are parallel lists indexed by text index
    (``(pc - TEXT_BASE) >> 3``); consumers hoist them into locals.  One
    instance is shared by every core simulating the same program — closures
    are stateless between calls (all mutable state lives in the caller's
    register lists / memory).
    """

    __slots__ = (
        "program",
        "insns",
        "kinds",
        "runs",
        "eas",
        "applies",
        "latencies",
        "block_runs",
        "block_lens",
        "read_keys",
        "write_keys",
        "size",
    )

    def __init__(self, program: Program) -> None:
        self.program = program
        text = program.text
        n = len(text)
        self.size = n
        self.insns = text
        kinds = [0] * n
        runs: list = [None] * n
        eas: list = [None] * n
        applies: list = [None] * n
        latencies = [1] * n
        for i, insn in enumerate(text):
            pc = TEXT_BASE + i * INSTRUCTION_BYTES
            kind, run, ea, apply = predecode_instruction(insn, pc)
            kinds[i] = kind
            runs[i] = run
            eas[i] = ea
            applies[i] = apply
            latencies[i] = insn.info.latency
        self.kinds = kinds
        self.runs = runs
        self.eas = eas
        self.applies = applies
        self.latencies = latencies
        self._build_dispatch_plan(text, n)
        self._build_superblocks(program, kinds, n)

    def _build_dispatch_plan(self, text, n: int) -> None:
        """Precompute the OoO dispatch-plan tables.

        ``read_keys[i]`` is the tuple of last-writer table keys the
        instruction's operands look up (``("x", r)`` / ``("f", r)``, in
        oracle scan order, duplicates preserved); ``write_keys[i]`` is the
        key its destination registers, or ``None``.  ``("x", 0)`` reads are
        dropped at build time: x0 writes are never registered, so the lookup
        always misses.
        """
        read_keys: list = [()] * n
        write_keys: list = [None] * n
        for i, insn in enumerate(text):
            info = insn.info
            keys = []
            for field in info.reads_int:
                reg = getattr(insn, field)
                if reg:
                    keys.append(("x", reg))
            for field in info.reads_float:
                keys.append(("f", getattr(insn, field)))
            read_keys[i] = tuple(keys)
            if info.writes_int:
                if insn.rd:
                    write_keys[i] = ("x", insn.rd)
            elif info.writes_float:
                write_keys[i] = ("f", insn.rd)
        self.read_keys = read_keys
        self.write_keys = write_keys

    def _build_superblocks(self, program: Program, kinds, n: int) -> None:
        """Compile extended basic blocks at block leaders.

        Leaders are every statically-reachable block start: the entry point,
        every symbol (jalr targets are function entries), every static
        branch/jump target, and the successor of every control-transfer,
        ecall or halt.  A block covers the maximal run of ALU/memory
        instructions from its leader plus (when present) the branch/jump
        that ends it.  Dynamic control flow into a non-leader is still
        correct — the per-instruction tables always exist; it just won't
        hit a superblock.
        """
        text = program.text
        leaders = {0, (program.entry - TEXT_BASE) >> 3}
        for addr in program.symbols.values():
            idx = (addr - TEXT_BASE) >> 3
            if 0 <= idx < n and not addr & 7:
                leaders.add(idx)
        for i, insn in enumerate(text):
            kind = kinds[i]
            if kind not in _ELIGIBLE_BODY:
                leaders.add(i + 1)
            if kind == K_BRANCH or insn.op is Op.JAL:
                target = to_signed64(TEXT_BASE + i * INSTRUCTION_BYTES + insn.imm)
                idx = (target - TEXT_BASE) >> 3
                if 0 <= idx < n and not target & 7:
                    leaders.add(idx)
        block_runs: list = [None] * n
        block_lens = [0] * n
        for i in leaders:
            if not 0 <= i < n:
                continue
            j = i
            while j < n and kinds[j] in _ELIGIBLE_BODY:
                j += 1
            body_len = j - i
            term_idx = j if j < n and kinds[j] in _TERMINATORS else None
            total = body_len + (1 if term_idx is not None else 0)
            if total >= MIN_SUPERBLOCK:
                block_runs[i] = _compile_block(text, i, body_len, term_idx)
                block_lens[i] = total
        self.block_runs = block_runs
        self.block_lens = block_lens


def predecode_program(program: Program) -> PredecodedProgram:
    """Predecode *program*, memoised on the program object itself.

    The cache rides on the (frozen) Program instance so every consumer of
    the same image — all N cores of a target, plus the interpreter — shares
    one closure table, and the cache dies with the program.
    """
    cached = getattr(program, "_predecoded", None)
    if cached is not None:
        return cached
    pre = PredecodedProgram(program)
    object.__setattr__(program, "_predecoded", pre)
    return pre


# ------------------------------------------------- timing superblock codegen
#
# The funcsim superblocks above cannot serve the timing cores: a block call
# collapses its instructions into one step, which would hide the per-cycle
# boundaries the timing model observes (latencies, cache moments, InQ
# routing).  Timing superblocks lift the restriction for the one instruction
# class where no boundary is *observable*: a straight-line run of latency-1
# register-only instructions, optionally ended by a latency-1 branch or
# jump.  Each such instruction occupies exactly one cycle, commits exactly
# one instruction, touches no cache, queue, or system state, and cannot
# stall — so executing n of them as one compiled call that advances the
# clock by n is cycle-for-cycle indistinguishable from n per-instruction
# steps.  The caller (InOrderCore.block_step via CoreThread.step_many) caps
# the block at the first cycle where the outside world could intervene: the
# turn budget, the window edge, and the next queued InQ event.
#
# A block function has signature ``tblock(x, f) -> next_pc`` (the length is
# static, read from the parallel ``lens`` table).  Fall-through blocks
# return the constant address past their last instruction; branch
# terminators return taken-target or fall-through.
#
# Generated module source is cached on disk in the toolchain's compile
# cache (:func:`repro.lang.compiler.cache_dir`), keyed by the encoded text,
# entry, symbols, and the toolchain fingerprint.  The cached file is *not* a
# standalone importable module — it is executed against a prepared helper
# namespace (:data:`_TIMING_NAMESPACE`) on both the hit and miss paths, so a
# disk round-trip and a fresh generation produce identical functions.

#: Bump to invalidate cached timing-block modules when the codegen changes.
_TIMING_CACHE_VERSION = 1

#: Globals every generated timing-block module is executed against.  The
#: per-function default-argument params (``_div=_div`` …) resolve here.
_TIMING_NAMESPACE = {
    "M": _MASK,
    "H": _HALF,
    "T": _TWO64,
    "_div": _div,
    "_rem": _rem,
    "_fsqrt": _fsqrt,
    "_fcvt_l_d": _fcvt_l_d,
    "_copysign": math.copysign,
    "_inf": math.inf,
    "_nan": math.nan,
    "_min": min,
    "_max": max,
    "_abs": abs,
    "_sin": math.sin,
    "_cos": math.cos,
    "_float": float,
    "_pack": _pack,
    "_unpack": _unpack,
}


class TimingBlocks:
    """Per-leader compiled timing superblocks for one :class:`Program`.

    Parallel tables indexed by text index: ``runs[i]`` is the compiled
    ``tblock(x, f) -> next_pc`` starting at *i* (``None`` when no block
    starts there), ``lens[i]`` its static cycle/commit count (0 when none).
    Stateless between calls — one instance is shared by every in-order core
    simulating the same program.
    """

    __slots__ = ("runs", "lens", "size")

    def __init__(self, runs: list, lens: list, size: int) -> None:
        self.runs = runs
        self.lens = lens
        self.size = size


def _emit_timing_terminator(insn: Instruction, pc: int, lines: list) -> None:
    """Like :func:`_emit_terminator`, but a not-taken branch returns the
    fall-through address instead of ``None`` (timing blocks always hand the
    caller an absolute next pc)."""
    op = insn.op
    d, a = insn.rd, insn.rs1
    if op is Op.JAL:
        if d:
            lines.append(f"x[{d}] = {pc + INSTRUCTION_BYTES}")
        lines.append(f"return {to_signed64(pc + insn.imm)}")
    elif op is Op.JALR:
        if insn.imm == 0:
            lines.append(f"v = x[{a}]")
        else:
            lines.append(f"v = (x[{a}] + {insn.imm}) & M")
            lines.append("v = v - T if v >= H else v")
        if d:
            lines.append(f"x[{d}] = {pc + INSTRUCTION_BYTES}")
        lines.append("return v")
    else:
        target = to_signed64(pc + insn.imm)
        cond = _BRANCH_EXPR[op].format(a=a, b=insn.rs2)
        lines.append(f"return {target} if {cond} else {pc + INSTRUCTION_BYTES}")


def _timing_source(program: Program) -> str:
    """Generate the timing-block module source for *program*.

    One function per qualifying leader plus a ``BLOCKS = {index: (fn,
    length)}`` table.  Deterministic for a given program + codegen version
    (leaders are emitted in index order), so cached files byte-compare equal
    across runs.
    """
    pre = predecode_program(program)
    text, kinds, lats = program.text, pre.kinds, pre.latencies
    n = pre.size
    leaders = {0, (program.entry - TEXT_BASE) >> 3}
    for addr in program.symbols.values():
        idx = (addr - TEXT_BASE) >> 3
        if 0 <= idx < n and not addr & 7:
            leaders.add(idx)
    for i, insn in enumerate(text):
        if kinds[i] != K_SIMPLE or lats[i] != 1:
            leaders.add(i + 1)
        if kinds[i] == K_BRANCH or insn.op is Op.JAL:
            target = to_signed64(TEXT_BASE + i * INSTRUCTION_BYTES + insn.imm)
            idx = (target - TEXT_BASE) >> 3
            if 0 <= idx < n and not target & 7:
                leaders.add(idx)
    chunks = [
        f"# timing superblocks for {program.name!r}"
        f" (codegen v{_TIMING_CACHE_VERSION}; executed against"
        " repro.cpu.predecode._TIMING_NAMESPACE)\n"
    ]
    entries = []
    for i in sorted(leaders):
        if not 0 <= i < n:
            continue
        j = i
        while j < n and kinds[j] == K_SIMPLE and lats[j] == 1:
            j += 1
        body_len = j - i
        term = j if j < n and kinds[j] in _TERMINATORS and lats[j] == 1 else None
        total = body_len + (1 if term is not None else 0)
        if total < MIN_SUPERBLOCK:
            continue
        binds: dict = {"M": _MASK, "H": _HALF, "T": _TWO64}
        lines: list[str] = []
        for k in range(i, j):
            _emit_insn(text[k], TEXT_BASE + k * INSTRUCTION_BYTES, lines, binds)
        if term is not None:
            _emit_timing_terminator(text[term], TEXT_BASE + term * INSTRUCTION_BYTES, lines)
        else:
            lines.append(f"return {TEXT_BASE + j * INSTRUCTION_BYTES}")
        params = ", ".join(f"{name}={name}" for name in binds)
        chunks.append(
            f"def _tb_{i}(x, f, {params}):\n    " + "\n    ".join(lines) + "\n"
        )
        entries.append(f"    {i}: (_tb_{i}, {total}),")
    chunks.append("BLOCKS = {\n" + "\n".join(entries) + "\n}\n")
    return "\n".join(chunks)


def _timing_cache_key(program: Program) -> str:
    """Cache key over everything the generated source depends on."""
    import hashlib
    import sys

    from repro.lang.compiler import toolchain_fingerprint

    h = hashlib.sha256()
    h.update(f"timing-blocks-v{_TIMING_CACHE_VERSION}\x00".encode())
    h.update(toolchain_fingerprint().encode())
    h.update(f"py{sys.version_info.major}.{sys.version_info.minor}\x00".encode())
    h.update(program.name.encode())
    h.update(b"\x00")
    h.update(struct.pack("<q", program.entry))
    for word in program.encoded_text():
        h.update(struct.pack("<Q", word & _MASK))
    for name, addr in sorted(program.symbols.items()):
        h.update(f"{name}={addr};".encode())
    return h.hexdigest()


def timing_blocks(program: Program) -> TimingBlocks:
    """Timing superblocks for *program*, memoised on the program object.

    The generated module source is additionally cached on disk through the
    toolchain compile cache; a hit skips the codegen pass (the ``exec`` cost
    is paid either way, so hit and miss produce identical functions).
    Caching is best-effort: an unreadable/corrupt cache entry falls back to
    fresh generation, and a disabled cache dir just skips the disk layer.
    """
    cached = getattr(program, "_timing_blocks", None)
    if cached is not None:
        return cached
    from repro.lang.compiler import cache_dir

    directory = cache_dir()
    path = None
    src = None
    if directory is not None:
        path = directory / f"tblocks_{_timing_cache_key(program)}.py"
        try:
            src = path.read_text(encoding="utf-8")
        except OSError:
            src = None
    namespace = dict(_TIMING_NAMESPACE)
    if src is not None:
        try:
            exec(compile(src, str(path), "exec"), namespace)  # noqa: S102
        except Exception:
            namespace = dict(_TIMING_NAMESPACE)
            src = None
    if src is None:
        src = _timing_source(program)
        exec(compile(src, "<timing-blocks>", "exec"), namespace)  # noqa: S102
        if path is not None:
            try:
                from repro._util import atomic_write_text

                atomic_write_text(path, src)
            except Exception:
                pass  # best-effort: read-only cache dirs never break runs
    n = len(program.text)
    runs: list = [None] * n
    lens = [0] * n
    for i, (fn, length) in namespace["BLOCKS"].items():
        runs[i] = fn
        lens[i] = length
    tb = TimingBlocks(runs, lens, n)
    object.__setattr__(program, "_timing_blocks", tb)
    return tb
