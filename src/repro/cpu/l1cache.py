"""Private L1 cache model (per core, owned by its core thread).

Set-associative, write-back, write-allocate, true-LRU, with MESI state per
line.  The L1 decides hit/miss locally; misses become OutQ events serviced by
the simulation manager's memory system (paper Figure 1).  Invalidations and
downgrades arrive from the manager through the core's InQ and are applied
here.

The cache is a *timing* structure only — data values live in the shared
functional :class:`~repro.cpu.arch.TargetMemory` and are touched at the
simulated moment the access completes (isochrone semantics, paper §3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import log2i

__all__ = ["MESI", "L1Cache", "L1Config", "AccessResult", "L1Stats"]


class MESI(enum.Enum):
    """MESI coherence states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class L1Config:
    """Geometry and timing of one L1 cache."""

    size_bytes: int = 16 * 1024
    block_bytes: int = 64
    assoc: int = 4
    hit_latency: int = 1

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.assoc)


class AccessResult(enum.Enum):
    """Outcome of a local L1 lookup."""

    HIT = "hit"
    MISS = "miss"          # no copy: needs GETS (read) / GETX (write)
    UPGRADE = "upgrade"    # write to a SHARED copy: needs GETX (no data)


@dataclass
class L1Stats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    upgrades: int = 0
    invalidations_received: int = 0
    downgrades_received: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "state", "lru")

    def __init__(self, tag: int, state: MESI, lru: int) -> None:
        self.tag = tag
        self.state = state
        self.lru = lru


class L1Cache:
    """One private L1 data (or instruction) cache."""

    def __init__(self, config: L1Config | None = None) -> None:
        self.config = config or L1Config()
        cfg = self.config
        self._block_shift = log2i(cfg.block_bytes)
        self._num_sets = cfg.num_sets
        if self._num_sets < 1:
            raise ValueError("cache too small for its associativity/block size")
        self._sets: list[list[_Line]] = [[] for _ in range(self._num_sets)]
        self._tick = 0
        self.stats = L1Stats()

    # ------------------------------------------------------------- geometry
    def block_addr(self, addr: int) -> int:
        """Align *addr* down to its block address."""
        return (addr >> self._block_shift) << self._block_shift

    def _index_tag(self, addr: int) -> tuple[int, int]:
        block = addr >> self._block_shift
        return block % self._num_sets, block // self._num_sets

    def _find(self, addr: int) -> _Line | None:
        index, tag = self._index_tag(addr)
        for line in self._sets[index]:
            if line.tag == tag and line.state is not MESI.INVALID:
                return line
        return None

    # --------------------------------------------------------------- access
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Look up *addr*; classify as hit / miss / upgrade.

        Does not change state on miss — call :meth:`fill` when the manager's
        response arrives.
        """
        self.stats.accesses += 1
        self._tick += 1
        line = self._find(addr)
        if line is None:
            self.stats.misses += 1
            return AccessResult.MISS
        if is_write and line.state is MESI.SHARED:
            self.stats.upgrades += 1
            return AccessResult.UPGRADE
        # Write to E silently upgrades to M (standard MESI).
        if is_write and line.state is MESI.EXCLUSIVE:
            line.state = MESI.MODIFIED
        line.lru = self._tick
        self.stats.hits += 1
        return AccessResult.HIT

    def fill(self, addr: int, state: MESI) -> int | None:
        """Install a block in *state*; returns the evicted dirty block
        address (for a PUTM writeback) or None."""
        if state is MESI.INVALID:
            raise ValueError("cannot fill a line in INVALID state")
        index, tag = self._index_tag(addr)
        self._tick += 1
        ways = self._sets[index]
        for line in ways:
            if line.tag == tag:
                line.state = state
                line.lru = self._tick
                return None
        victim_addr: int | None = None
        if len(ways) >= self.config.assoc:
            victim = min(ways, key=lambda ln: ln.lru)
            ways.remove(victim)
            if victim.state is MESI.MODIFIED:
                self.stats.writebacks += 1
                victim_block = (victim.tag * self._num_sets + index) << self._block_shift
                victim_addr = victim_block
        ways.append(_Line(tag, state, self._tick))
        return victim_addr

    # ------------------------------------------------------------ coherence
    def invalidate(self, addr: int) -> bool:
        """Handle an invalidation from the directory; True if we had a copy."""
        line = self._find(addr)
        self.stats.invalidations_received += 1
        if line is None:
            return False
        line.state = MESI.INVALID
        return True

    def downgrade(self, addr: int) -> bool:
        """M/E -> S on a remote read; True if the line was dirty (data must
        be written back through the directory)."""
        line = self._find(addr)
        self.stats.downgrades_received += 1
        if line is None:
            return False
        was_dirty = line.state is MESI.MODIFIED
        line.state = MESI.SHARED
        return was_dirty

    def state_of(self, addr: int) -> MESI:
        line = self._find(addr)
        return line.state if line is not None else MESI.INVALID

    def resident_blocks(self) -> list[tuple[int, MESI]]:
        """All valid (block_address, state) pairs — for invariant checks."""
        out = []
        for index, ways in enumerate(self._sets):
            for line in ways:
                if line.state is not MESI.INVALID:
                    block = (line.tag * self._num_sets + index) << self._block_shift
                    out.append((block, line.state))
        return out
