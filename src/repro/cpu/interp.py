"""Pure functional interpreter (no timing) for single-threaded programs.

This is the toolchain's golden reference: compiler tests, assembler examples
and workload oracles run here, independent of every timing model.  It
supports the non-blocking subset of the syscall API (exit / prints / sbrk /
clock / thread_id / num_threads) plus trivially-satisfiable single-thread
synchronization (locks, one-participant barriers, semaphores), so registered
workloads run here at ``nthreads=1``.  Multi-threaded programs must run on
the slack engine (:mod:`repro.core`), which provides the full Table 1
emulation.

Two execution layers are available via ``dispatch=``: ``"predecoded"``
(default) runs the per-PC closure tables of :mod:`repro.cpu.predecode`
including superblocks; ``"oracle"`` runs the original
:func:`repro.cpu.funcsim.execute` loop.  Both produce bit-identical
architectural trajectories (asserted by tests/core/test_dispatch_differential.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import align_up
from repro.cpu.arch import REG_A0, REG_A7, REG_SP, REG_TP, ArchState, TargetMemory
from repro.cpu.funcsim import NEXT, execute
from repro.cpu.predecode import (
    K_BRANCH,
    K_ECALL,
    K_HALT,
    K_JUMP,
    K_SIMPLE,
    predecode_program,
)
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.program import TEXT_BASE, Program
from repro.sysapi.syscalls import Sys

__all__ = ["FunctionalInterpreter", "InterpResult", "run_functional"]


class InterpError(RuntimeError):
    """Functional interpretation failed (unsupported syscall, runaway loop)."""


@dataclass
class InterpResult:
    """Outcome of a functional run."""

    exit_code: int
    instructions: int
    output: list = field(default_factory=list)  # ints / floats / 1-char strs
    memory: TargetMemory | None = None
    state: ArchState | None = None

    @property
    def int_output(self) -> list[int]:
        return [v for v in self.output if isinstance(v, int)]

    @property
    def float_output(self) -> list[float]:
        return [v for v in self.output if isinstance(v, float)]

    def text_output(self) -> str:
        """Printable rendering of the output stream."""
        parts = []
        for v in self.output:
            parts.append(v if isinstance(v, str) else f"{v}\n" if isinstance(v, int) else f"{v:.17g}\n")
        return "".join(parts)


class FunctionalInterpreter:
    """Fetch/execute loop over a :class:`Program` with minimal syscalls."""

    def __init__(
        self,
        program: Program,
        *,
        memory_bytes: int = 16 * 1024 * 1024,
        stack_bytes: int = 1 << 20,
        dispatch: str = "predecoded",
    ) -> None:
        if dispatch not in ("predecoded", "oracle"):
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        self.program = program
        self.mem = TargetMemory(memory_bytes)
        self.mem.write_words(TEXT_BASE, program.encoded_text())
        if program.data:
            from repro.isa.program import DATA_BASE

            self.mem.write_bytes(DATA_BASE, program.data)
        self.brk = align_up(program.data_end, 64)
        self.state = ArchState(context_id=0, pc=program.entry)
        self.state.set_x(REG_SP, memory_bytes - 64)
        self.state.set_x(REG_TP, 0)
        self.output: list = []
        self.instructions = 0
        self.exit_code: int | None = None
        self._text = program.text
        self._stack_limit = memory_bytes - stack_bytes
        # Host-side single-thread synchronization state (keyed by target
        # address).  With one thread every acquire must succeed immediately;
        # anything that would block is a guaranteed deadlock and raises.
        self._locks: dict[int, bool] = {}
        self._barriers: dict[int, int] = {}
        self._semas: dict[int, int] = {}

    def _fetch(self, pc: int) -> Instruction:
        index, rem = divmod(pc - TEXT_BASE, INSTRUCTION_BYTES)
        if rem or not 0 <= index < len(self._text):
            raise InterpError(f"PC {pc:#x} outside text segment")
        return self._text[index]

    def _syscall(self) -> int | None:
        """Handle an ecall; return the next PC (or None to fall through)."""
        state = self.state
        num = state.x[REG_A7]
        a0 = state.x[REG_A0]
        try:
            sys = Sys(num)
        except ValueError:
            raise InterpError(f"unknown syscall {num} at pc {state.pc:#x}") from None
        if sys is Sys.EXIT:
            self.exit_code = a0
            state.halted = True
            return state.pc
        if sys is Sys.PRINT_INT:
            self.output.append(a0)
        elif sys is Sys.PRINT_FLOAT:
            self.output.append(state.f[10])
        elif sys is Sys.PRINT_CHAR:
            self.output.append(chr(a0 & 0x10FFFF))
        elif sys is Sys.SBRK:
            old = self.brk
            new = align_up(old + a0, 64)
            if new >= self._stack_limit:
                raise InterpError(f"sbrk({a0}) exhausts the heap (brk {old:#x})")
            self.brk = new
            state.set_x(REG_A0, old)
        elif sys is Sys.CLOCK:
            state.set_x(REG_A0, self.instructions)
        elif sys is Sys.THREAD_ID:
            state.set_x(REG_A0, 0)
        elif sys is Sys.NUM_THREADS:
            state.set_x(REG_A0, 1)
        elif sys is Sys.LOCK_INIT:
            self._locks[a0] = False
        elif sys is Sys.LOCK_ACQ:
            if self._locks.get(a0, False):
                raise InterpError(f"re-acquiring held lock {a0:#x}: single-thread deadlock")
            self._locks[a0] = True
        elif sys is Sys.LOCK_REL:
            self._locks[a0] = False
        elif sys is Sys.BARRIER_INIT:
            self._barriers[a0] = state.x[REG_A0 + 1]
        elif sys is Sys.BARRIER_WAIT:
            if self._barriers.get(a0, 1) != 1:
                raise InterpError(
                    f"barrier {a0:#x} has {self._barriers[a0]} participants: "
                    "single-thread deadlock (use the slack engine)"
                )
        elif sys is Sys.SEMA_INIT:
            self._semas[a0] = state.x[REG_A0 + 1]
        elif sys is Sys.SEMA_WAIT:
            value = self._semas.get(a0, 0)
            if value <= 0:
                raise InterpError(f"sema_wait on empty semaphore {a0:#x}: single-thread deadlock")
            self._semas[a0] = value - 1
        elif sys is Sys.SEMA_SIGNAL:
            self._semas[a0] = self._semas.get(a0, 0) + 1
        else:
            raise InterpError(
                f"syscall {sys.name} needs the slack engine (multi-threaded emulation)"
            )
        return None

    def run(self, max_instructions: int = 50_000_000) -> InterpResult:
        """Run until ``exit``/``halt`` or the instruction budget is exhausted."""
        if self.dispatch == "predecoded":
            return self._run_predecoded(max_instructions)
        state = self.state
        mem = self.mem
        while not state.halted:
            if self.instructions >= max_instructions:
                raise InterpError(f"exceeded {max_instructions} instructions (runaway program?)")
            insn = self._fetch(state.pc)
            outcome = execute(state, insn, mem)
            self.instructions += 1
            if outcome.is_syscall:
                next_pc = self._syscall()
                state.pc = next_pc if next_pc is not None else state.pc + INSTRUCTION_BYTES
                if state.halted:
                    break
            elif outcome.is_halt:
                if self.exit_code is None:
                    self.exit_code = 0
                break
            elif outcome.next_pc is NEXT:
                state.pc += INSTRUCTION_BYTES
            else:
                state.pc = outcome.next_pc
        return InterpResult(
            exit_code=self.exit_code if self.exit_code is not None else 0,
            instructions=self.instructions,
            output=self.output,
            memory=mem,
            state=state,
        )

    def _run_predecoded(self, max_instructions: int) -> InterpResult:
        """Closure-dispatch run loop: same trajectory as the oracle loop.

        The PC and instruction count live in locals and are written back to
        ``self.state`` / ``self.instructions`` only at syscalls, halts and
        errors — exactly the moments the oracle path makes them observable.
        Superblocks fire only when the whole run fits the remaining budget;
        otherwise the per-instruction path reproduces the oracle's raise
        point bit-for-bit.
        """
        pre = predecode_program(self.program)
        kinds = pre.kinds
        runs = pre.runs
        eas = pre.eas
        applies = pre.applies
        block_runs = pre.block_runs
        block_lens = pre.block_lens
        limit = pre.size * INSTRUCTION_BYTES
        state = self.state
        mem = self.mem
        x = state.x
        f = state.f
        count = self.instructions
        pc = state.pc
        while not state.halted:
            offset = pc - TEXT_BASE
            if offset & 7 or not 0 <= offset < limit:
                state.pc = pc
                self.instructions = count
                raise InterpError(f"PC {pc:#x} outside text segment")
            i = offset >> 3
            block = block_runs[i]
            if block is not None and count + block_lens[i] <= max_instructions:
                target = block(x, f, mem)
                count += block_lens[i]
                pc = target if target is not None else pc + block_lens[i] * INSTRUCTION_BYTES
                continue
            if count >= max_instructions:
                state.pc = pc
                self.instructions = count
                raise InterpError(f"exceeded {max_instructions} instructions (runaway program?)")
            kind = kinds[i]
            if kind == K_SIMPLE:
                runs[i](x, f)
                count += 1
                pc += INSTRUCTION_BYTES
            elif kind == K_BRANCH:
                target = runs[i](x, f)
                count += 1
                pc = target if target is not None else pc + INSTRUCTION_BYTES
            elif kind == K_JUMP:
                pc = runs[i](x, f)
                count += 1
            elif kind == K_ECALL:
                count += 1
                state.pc = pc
                self.instructions = count
                next_pc = self._syscall()
                pc = next_pc if next_pc is not None else pc + INSTRUCTION_BYTES
            elif kind == K_HALT:
                count += 1
                state.halted = True
                if self.exit_code is None:
                    self.exit_code = 0
                break
            else:  # K_LOAD / K_STORE / K_AMO
                applies[i](x, f, mem, eas[i](x))
                count += 1
                pc += INSTRUCTION_BYTES
        state.pc = pc
        self.instructions = count
        return InterpResult(
            exit_code=self.exit_code if self.exit_code is not None else 0,
            instructions=self.instructions,
            output=self.output,
            memory=mem,
            state=state,
        )


def run_functional(program: Program, **kwargs) -> InterpResult:
    """Convenience wrapper: interpret *program* functionally and return the result."""
    max_instructions = kwargs.pop("max_instructions", 50_000_000)
    return FunctionalInterpreter(program, **kwargs).run(max_instructions=max_instructions)
