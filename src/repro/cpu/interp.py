"""Pure functional interpreter (no timing) for single-threaded programs.

This is the toolchain's golden reference: compiler tests, assembler examples
and workload oracles run here, independent of every timing model.  It
supports the non-blocking subset of the syscall API (exit / prints / sbrk /
clock / thread_id / num_threads).  Multi-threaded programs must run on the
slack engine (:mod:`repro.core`), which provides the full Table 1 emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import align_up
from repro.cpu.arch import REG_A0, REG_A7, REG_SP, REG_TP, ArchState, TargetMemory
from repro.cpu.funcsim import NEXT, execute
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.program import TEXT_BASE, Program
from repro.sysapi.syscalls import Sys

__all__ = ["FunctionalInterpreter", "InterpResult", "run_functional"]


class InterpError(RuntimeError):
    """Functional interpretation failed (unsupported syscall, runaway loop)."""


@dataclass
class InterpResult:
    """Outcome of a functional run."""

    exit_code: int
    instructions: int
    output: list = field(default_factory=list)  # ints / floats / 1-char strs
    memory: TargetMemory | None = None
    state: ArchState | None = None

    @property
    def int_output(self) -> list[int]:
        return [v for v in self.output if isinstance(v, int)]

    @property
    def float_output(self) -> list[float]:
        return [v for v in self.output if isinstance(v, float)]

    def text_output(self) -> str:
        """Printable rendering of the output stream."""
        parts = []
        for v in self.output:
            parts.append(v if isinstance(v, str) else f"{v}\n" if isinstance(v, int) else f"{v:.17g}\n")
        return "".join(parts)


class FunctionalInterpreter:
    """Fetch/execute loop over a :class:`Program` with minimal syscalls."""

    def __init__(
        self,
        program: Program,
        *,
        memory_bytes: int = 16 * 1024 * 1024,
        stack_bytes: int = 1 << 20,
    ) -> None:
        self.program = program
        self.mem = TargetMemory(memory_bytes)
        self.mem.write_words(TEXT_BASE, program.encoded_text())
        if program.data:
            from repro.isa.program import DATA_BASE

            self.mem.write_bytes(DATA_BASE, program.data)
        self.brk = align_up(program.data_end, 64)
        self.state = ArchState(context_id=0, pc=program.entry)
        self.state.set_x(REG_SP, memory_bytes - 64)
        self.state.set_x(REG_TP, 0)
        self.output: list = []
        self.instructions = 0
        self.exit_code: int | None = None
        self._text = program.text
        self._stack_limit = memory_bytes - stack_bytes

    def _fetch(self, pc: int) -> Instruction:
        index, rem = divmod(pc - TEXT_BASE, INSTRUCTION_BYTES)
        if rem or not 0 <= index < len(self._text):
            raise InterpError(f"PC {pc:#x} outside text segment")
        return self._text[index]

    def _syscall(self) -> int | None:
        """Handle an ecall; return the next PC (or None to fall through)."""
        state = self.state
        num = state.x[REG_A7]
        a0 = state.x[REG_A0]
        try:
            sys = Sys(num)
        except ValueError:
            raise InterpError(f"unknown syscall {num} at pc {state.pc:#x}") from None
        if sys is Sys.EXIT:
            self.exit_code = a0
            state.halted = True
            return state.pc
        if sys is Sys.PRINT_INT:
            self.output.append(a0)
        elif sys is Sys.PRINT_FLOAT:
            self.output.append(state.f[10])
        elif sys is Sys.PRINT_CHAR:
            self.output.append(chr(a0 & 0x10FFFF))
        elif sys is Sys.SBRK:
            old = self.brk
            new = align_up(old + a0, 64)
            if new >= self._stack_limit:
                raise InterpError(f"sbrk({a0}) exhausts the heap (brk {old:#x})")
            self.brk = new
            state.set_x(REG_A0, old)
        elif sys is Sys.CLOCK:
            state.set_x(REG_A0, self.instructions)
        elif sys is Sys.THREAD_ID:
            state.set_x(REG_A0, 0)
        elif sys is Sys.NUM_THREADS:
            state.set_x(REG_A0, 1)
        else:
            raise InterpError(
                f"syscall {sys.name} needs the slack engine (multi-threaded emulation)"
            )
        return None

    def run(self, max_instructions: int = 50_000_000) -> InterpResult:
        """Run until ``exit``/``halt`` or the instruction budget is exhausted."""
        state = self.state
        mem = self.mem
        while not state.halted:
            if self.instructions >= max_instructions:
                raise InterpError(f"exceeded {max_instructions} instructions (runaway program?)")
            insn = self._fetch(state.pc)
            outcome = execute(state, insn, mem)
            self.instructions += 1
            if outcome.is_syscall:
                next_pc = self._syscall()
                state.pc = next_pc if next_pc is not None else state.pc + INSTRUCTION_BYTES
                if state.halted:
                    break
            elif outcome.is_halt:
                if self.exit_code is None:
                    self.exit_code = 0
                break
            elif outcome.next_pc is NEXT:
                state.pc += INSTRUCTION_BYTES
            else:
                state.pc = outcome.next_pc
        return InterpResult(
            exit_code=self.exit_code if self.exit_code is not None else 0,
            instructions=self.instructions,
            output=self.output,
            memory=mem,
            state=state,
        )


def run_functional(program: Program, **kwargs) -> InterpResult:
    """Convenience wrapper: interpret *program* functionally and return the result."""
    max_instructions = kwargs.pop("max_instructions", 50_000_000)
    return FunctionalInterpreter(program, **kwargs).run(max_instructions=max_instructions)
