"""Out-of-order core model (the paper's NetBurst-like configuration:
4-wide, 64 in-flight instructions, non-blocking L1 with MSHRs, branch
prediction).

Modeling approach — *architectural execution with a dataflow timing
overlay*:

* instructions execute **functionally in program order at dispatch** (this
  gives oracle-path fetch; mispredictions charge a fetch-bubble penalty when
  the predictor disagrees with the actual outcome);
* **timing** is an out-of-order dataflow overlay: a 64-entry ROB tracks
  register dependencies through a last-writer table, instructions "execute"
  on their unit when their producers complete, loads issue to the
  non-blocking L1 (MSHR-limited) or forward from older in-flight stores, and
  up to 4 instructions commit per cycle in order;
* **shared-memory moments** follow the slack semantics that matter to the
  paper: store values sit in a store buffer and reach the shared functional
  memory only at *commit* (their timed moment); loads read memory at
  dispatch through the store buffer.  Relative to the paper's
  exec-at-execution-unit rule this reads racy loads a few cycles early —
  a documented deviation (DESIGN.md §2) that only affects data races, whose
  value under slack is undefined anyway.
* syscalls and AMOs serialise the pipeline (dispatch waits for an empty
  ROB), which makes them equivalent to committing in order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.events import EvKind, Event
from repro.cpu.arch import ArchState, TargetMemory
from repro.cpu.branch import make_predictor
from repro.cpu.funcsim import NEXT, do_amo, effective_address, execute
from repro.cpu.interfaces import CorePhase
from repro.cpu.predecode import predecode_program
from repro.cpu.l1cache import MESI, AccessResult, L1Cache
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import TEXT_BASE, Program
from repro.sysapi.system import SysAction, SystemEmulation
from repro.violations.detect import WordOrderTracker

__all__ = ["OoOCore"]

_GRANT_TO_MESI = {"M": MESI.MODIFIED, "E": MESI.EXCLUSIVE, "S": MESI.SHARED}

# Entry states.
_WAITING = 0    # operands not ready
_READY = 1      # may issue
_EXECUTING = 2  # on a unit until done_at
_DONE = 3       # result available, awaiting commit


class _RobEntry:
    __slots__ = (
        "insn", "seq", "state", "done_at", "deps",
        "is_load", "is_store", "addr", "block", "store_value", "store_is_float",
        "waiting_mem", "forwarded_from",
    )

    def __init__(self, insn: Instruction, seq: int) -> None:
        self.insn = insn
        self.seq = seq
        self.state = _WAITING
        self.done_at = -1
        self.deps: list[_RobEntry] = []
        self.is_load = False
        self.is_store = False
        self.addr = -1
        self.block = -1
        self.store_value: int | float | None = None
        self.store_is_float = False
        self.waiting_mem = False
        self.forwarded_from: "_RobEntry | None" = None


class OoOCore:
    """One NetBurst-like out-of-order target core."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        memory: TargetMemory,
        l1d: L1Cache,
        emit: Callable[[Event], None],
        system: SystemEmulation,
        *,
        width: int = 4,
        rob_size: int = 64,
        mshrs: int = 8,
        predictor: str = "gshare",
        mispredict_penalty: int = 8,
        word_tracker: WordOrderTracker | None = None,
        fastforward: bool = False,
        l1i: L1Cache | None = None,
        dispatch: str = "predecoded",
    ) -> None:
        self.core_id = core_id
        self.program = program
        self.memory = memory
        self.l1d = l1d
        self.l1i = l1i
        self.emit = emit
        self.system = system
        self.width = width
        self.rob_size = rob_size
        self.mshr_limit = mshrs
        self.predictor = make_predictor(predictor)
        self.mispredict_penalty = mispredict_penalty
        self.word_tracker = word_tracker
        self.fastforward = fastforward

        self.state: ArchState | None = None
        self.phase = CorePhase.IDLE
        self.committed = 0
        self.stall_cycles = 0
        self.mispredicts = 0
        self.pending_wakes: list[tuple[int, int]] = []

        self._text = program.text
        # Predecoded closure tables: the architectural backbone executes via
        # specialized closures; the dataflow timing overlay is unchanged.
        if dispatch == "predecoded":
            pre = predecode_program(program)
            self._runs: list | None = pre.runs
            self._eas: list | None = pre.eas
            # Dispatch-plan tables: per-index last-writer keys precomputed
            # at predecode time, so the per-dispatch dependency scan walks a
            # ready-made tuple instead of an OPINFO getattr chain.
            self._read_keys: list | None = pre.read_keys
            self._write_keys: list | None = pre.write_keys
        elif dispatch == "oracle":
            self._runs = None
            self._eas = None
            self._read_keys = None
            self._write_keys = None
        else:
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self._rob: deque[_RobEntry] = deque()
        self._seq = 0
        self._last_writer: dict[tuple[str, int], _RobEntry] = {}
        self._fetch_stall_until = -1
        self._store_buffer: list[_RobEntry] = []  # program order
        self._mshrs: dict[int, list[_RobEntry]] = {}  # block -> waiting loads
        self._pending_store: _RobEntry | None = None  # store blocked at commit
        self._blocked = False
        self._release_ts: int | None = None
        self._halt_pending = False

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        # As in InOrderCore: the predecoded per-PC closures are dropped and
        # re-derived from the (pickled) program on restore.
        state = dict(self.__dict__)
        predecoded = state.pop("_runs", None) is not None
        state.pop("_eas", None)
        state.pop("_read_keys", None)
        state.pop("_write_keys", None)
        state["_pickle_predecoded"] = predecoded
        return state

    def __setstate__(self, state) -> None:
        predecoded = state.pop("_pickle_predecoded")
        self.__dict__.update(state)
        if predecoded:
            pre = predecode_program(self.program)
            self._runs = pre.runs
            self._eas = pre.eas
            self._read_keys = pre.read_keys
            self._write_keys = pre.write_keys
        else:
            self._runs = None
            self._eas = None
            self._read_keys = None
            self._write_keys = None

    # ------------------------------------------------------------ lifecycle
    def bind_context(self, state: ArchState) -> None:
        self.state = state

    def activate(self, pc: int, arg: int, ts: int) -> None:
        if self.phase not in (CorePhase.IDLE, CorePhase.HALTED):
            raise RuntimeError(f"core {self.core_id} activated while {self.phase}")
        assert self.state is not None
        if self._rob or self._blocked or self._mshrs:
            raise RuntimeError(f"core {self.core_id} reactivated with in-flight state")
        self.state.pc = pc
        self.state.halted = False
        self.state.set_x(10, arg)
        self._fetch_stall_until = -1
        self._halt_pending = False
        self.phase = CorePhase.ACTIVE

    # ------------------------------------------------------------- delivery
    def deliver_response(self, event: Event) -> None:
        block = event.addr
        grant = _GRANT_TO_MESI.get(event.grant or "")
        if grant is None:
            raise RuntimeError(f"core {self.core_id}: response without grant {event}")
        victim = self.l1d.fill(block, grant)
        if victim is not None:
            self.emit(Event(EvKind.PUTM, victim, self.core_id, event.ts))
        waiters = self._mshrs.pop(block, [])
        for entry in waiters:
            entry.waiting_mem = False
            # Data arrives at the response timestamp; completion next cycle.
            entry.state = _EXECUTING
            entry.done_at = event.ts
        if self._pending_store is not None and self._pending_store.block == block:
            self._pending_store.waiting_mem = False

    def apply_invalidation(self, addr: int) -> None:
        self.l1d.invalidate(addr)
        if self.l1i is not None:
            self.l1i.invalidate(addr)

    def apply_downgrade(self, addr: int) -> None:
        self.l1d.downgrade(addr)

    def release(self, release_ts: int) -> None:
        """Arm the wake-up for a BLOCK-ed syscall.

        May legitimately arrive *before* this core observes the BLOCK result
        in the threaded engine (the releaser runs concurrently); the value is
        consumed exactly once when the blocking syscall finishes.
        """
        self._release_ts = release_ts

    @property
    def spinning(self) -> bool:
        return self._blocked

    def stall_hint(self, now: int) -> int | None:
        if self._blocked and self._release_ts is not None and self._release_ts > now:
            return self._release_ts
        return None

    # ----------------------------------------------------------------- step
    def step(self, now: int) -> tuple[int, bool]:
        if self.phase in (CorePhase.IDLE, CorePhase.HALTED):
            return 0, False
        if self._blocked:
            if self._release_ts is not None and now >= self._release_ts:
                return self._finish_blocking_syscall(now)
            self.stall_cycles += 1
            return 0, True
        before = self.committed
        self._commit(now)
        self._complete_and_issue(now)
        dispatched = self._dispatch(now)
        committed = self.committed - before
        if self._halt_pending and not self._rob:
            self.phase = CorePhase.HALTED
        active = bool(committed or dispatched or self._rob)
        if not committed and not dispatched:
            self.stall_cycles += 1
            # Waiting purely on memory responses: cheap stall cycle.
            if self._mshrs or (self._pending_store is not None and self._pending_store.waiting_mem):
                active = False
        return committed, active

    # --------------------------------------------------------------- commit
    def _commit(self, now: int) -> int:
        committed = 0
        while self._rob and committed < self.width:
            entry = self._rob[0]
            if entry.state is not _DONE or entry.done_at > now:
                break
            if entry.is_store:
                if not self._commit_store(entry, now):
                    break
            self._rob.popleft()
            key_candidates = [k for k, v in self._last_writer.items() if v is entry]
            for k in key_candidates:
                del self._last_writer[k]
            committed += 1
            self.committed += 1
        return committed

    def _commit_store(self, entry: _RobEntry, now: int) -> bool:
        """Perform the store's memory moment; False if blocked on a miss."""
        if entry.waiting_mem:
            return False
        if self._pending_store is entry:
            # Response arrived: retry the access below.
            self._pending_store = None
        result = self.l1d.access(entry.addr, True)
        if result is not AccessResult.HIT:
            kind = EvKind.UPGRADE if result is AccessResult.UPGRADE else EvKind.GETX
            self.emit(Event(kind, entry.block, self.core_id, now))
            entry.waiting_mem = True
            self._pending_store = entry
            return False
        # Memory write moment (isochrone): commit time.
        if self.word_tracker is not None:
            ff = self.word_tracker.observe_store(entry.addr, self.core_id, now)
            if ff and self.fastforward:
                self._fetch_stall_until = max(self._fetch_stall_until, now + ff)
        if entry.store_is_float:
            self.memory.store_float(entry.addr, float(entry.store_value))
        else:
            self.memory.store_word(entry.addr, int(entry.store_value))
        assert self._store_buffer and self._store_buffer[0] is entry
        self._store_buffer.pop(0)
        return True

    # ------------------------------------------------------ execute / issue
    def _complete_and_issue(self, now: int) -> None:
        issued = 0
        for entry in self._rob:
            if entry.state is _EXECUTING and entry.done_at <= now:
                entry.state = _DONE
        for entry in self._rob:
            if issued >= self.width:
                break
            if entry.state is not _WAITING:
                continue
            if any(dep.state is not _DONE or dep.done_at > now for dep in entry.deps):
                continue
            if entry.is_load:
                if not self._issue_load(entry, now):
                    continue
                issued += 1
            else:
                entry.state = _EXECUTING
                entry.done_at = now + entry.insn.latency
                issued += 1

    def _issue_load(self, entry: _RobEntry, now: int) -> bool:
        # Store-to-load forwarding from the youngest older store to this addr.
        for store in reversed(self._store_buffer):
            if store.seq < entry.seq and store.addr == entry.addr:
                if store.state is _DONE or (store.state is _EXECUTING and store.done_at <= now):
                    entry.state = _EXECUTING
                    entry.done_at = now + 1
                    entry.forwarded_from = store
                    return True
                return False  # wait for the store's data
        if entry.block in self._mshrs:
            self._mshrs[entry.block].append(entry)
            entry.state = _EXECUTING  # parked on the MSHR
            entry.done_at = 1 << 60
            entry.waiting_mem = True
            return True
        result = self.l1d.access(entry.addr, False)
        if result is AccessResult.HIT:
            entry.state = _EXECUTING
            entry.done_at = now + self.l1d.config.hit_latency
            return True
        if len(self._mshrs) >= self.mshr_limit:
            return False  # structural stall: retry next cycle
        self.emit(Event(EvKind.GETS, entry.block, self.core_id, now))
        self._mshrs[entry.block] = [entry]
        entry.state = _EXECUTING
        entry.done_at = 1 << 60
        entry.waiting_mem = True
        return True

    # -------------------------------------------------------------- dispatch
    def _fetch(self, pc: int) -> Instruction:
        index = (pc - TEXT_BASE) >> 3
        if not 0 <= index < len(self._text) or pc & 7:
            raise RuntimeError(f"core {self.core_id}: PC {pc:#x} outside text segment")
        return self._text[index]

    def _dispatch(self, now: int) -> int:
        assert self.state is not None
        if now < self._fetch_stall_until or self._halt_pending:
            return 0
        state = self.state
        runs = self._runs
        read_keys = self._read_keys
        write_keys = self._write_keys
        last_writer = self._last_writer
        index = -1
        dispatched = 0
        while dispatched < self.width and len(self._rob) < self.rob_size:
            insn = self._fetch(state.pc)
            info = insn.info
            if info.is_amo or insn.op is Op.ECALL:
                if self._rob:
                    break  # serialise: wait for an empty ROB
                handled = self._dispatch_serialised(insn, now)
                dispatched += handled
                break
            entry = _RobEntry(insn, self._seq)
            self._seq += 1
            # Timing dependencies via the last-writer table: the predecoded
            # dispatch plan walks ready-made key tuples; the oracle path
            # scans the OPINFO read fields.  Both visit the same keys in the
            # same order (x reads then f reads, duplicates preserved).
            if runs is not None:
                index = (state.pc - TEXT_BASE) >> 3
                for key in read_keys[index]:
                    writer = last_writer.get(key)
                    if writer is not None:
                        entry.deps.append(writer)
                wkey = write_keys[index]
            else:
                for reg_kind, fields in (("x", info.reads_int), ("f", info.reads_float)):
                    for field in fields:
                        reg = getattr(insn, field)
                        writer = last_writer.get((reg_kind, reg))
                        if writer is not None:
                            entry.deps.append(writer)
                if info.writes_int:
                    wkey = ("x", insn.rd) if insn.rd else None
                elif info.writes_float:
                    wkey = ("f", insn.rd)
                else:
                    wkey = None
            if info.is_load or info.is_store:
                if runs is not None:
                    entry.addr = self._eas[index](state.x)
                else:
                    entry.addr = effective_address(state, insn)
                entry.block = self.l1d.block_addr(entry.addr)
                entry.is_load = info.is_load
                entry.is_store = info.is_store

            # Architectural (functional) execution, in program order.  The
            # predecoded path synthesises the oracle's (is_halt, taken,
            # target) triple from the closure's return value.
            if entry.is_load:
                self._functional_load(insn, entry.addr, now)
            elif entry.is_store:
                entry.store_is_float = insn.op is Op.FSD
                entry.store_value = (
                    state.f[insn.rs2] if entry.store_is_float else state.x[insn.rs2]
                )
                self._store_buffer.append(entry)
            executed = False
            is_halt = taken = False
            target: int | None = None
            if not entry.is_load and not entry.is_store:
                executed = True
                if runs is not None:
                    run = runs[index]
                    if run is None:  # halt (ecall/AMO serialised earlier)
                        state.halted = True
                        is_halt = True
                    else:
                        target = run(state.x, state.f)
                        taken = target is not None
                else:
                    outcome = execute(state, insn)
                    is_halt = outcome.is_halt
                    taken = outcome.taken
                    target = outcome.next_pc if outcome.next_pc is not NEXT else None
                if is_halt:
                    self._halt_pending = True
                    entry.state = _DONE
                    entry.done_at = now
                    self._rob.append(entry)
                    dispatched += 1
                    break
            if entry.is_load or entry.is_store:
                state.pc += INSTRUCTION_BYTES
            elif executed and info.is_branch:
                branch_pc = state.pc
                if insn.op in (Op.JAL, Op.JALR):
                    predicted = True  # unconditional: always predicted taken
                else:
                    predicted = self.predictor.predict(branch_pc, insn.imm)
                    self.predictor.update(branch_pc, taken, predicted)
                state.pc = target if taken else state.pc + INSTRUCTION_BYTES
                if predicted != taken:
                    self.mispredicts += 1
                    self._fetch_stall_until = now + self.mispredict_penalty
                elif taken:
                    # Correctly-predicted taken branch: one fetch-redirect
                    # bubble ends this cycle's dispatch group.
                    self._rob.append(entry)
                    dispatched += 1
                    if wkey is not None:
                        last_writer[wkey] = entry
                    break
            elif executed:
                state.pc = state.pc + INSTRUCTION_BYTES if target is None else target
            # Register the destination for dependents.
            if wkey is not None:
                last_writer[wkey] = entry
            self._rob.append(entry)
            dispatched += 1
            if info.is_branch and self._fetch_stall_until > now:
                break  # fetch bubble after a mispredicted branch
        return dispatched

    def _functional_load(self, insn: Instruction, addr: int, now: int) -> None:
        """Architectural load at dispatch, seeing in-flight older stores."""
        assert self.state is not None
        if self.word_tracker is not None:
            self.word_tracker.observe_load(addr, self.core_id, now)
        for store in reversed(self._store_buffer):
            if store.addr == addr:
                if insn.op is Op.FLD:
                    value = store.store_value
                    self.state.f[insn.rd] = (
                        float(value)
                        if store.store_is_float
                        else self._bits_to_float(int(value))
                    )
                else:
                    value = store.store_value
                    self.state.set_x(
                        insn.rd,
                        int(value) if not store.store_is_float else self._float_to_bits(float(value)),
                    )
                return
        if insn.op is Op.FLD:
            self.state.f[insn.rd] = self.memory.load_float(addr)
        else:
            self.state.set_x(insn.rd, self.memory.load_word(addr))

    @staticmethod
    def _bits_to_float(bits: int) -> float:
        import struct

        return struct.unpack("<d", struct.pack("<q", bits))[0]

    @staticmethod
    def _float_to_bits(value: float) -> int:
        import struct

        return struct.unpack("<q", struct.pack("<d", value))[0]

    # ----------------------------------------------------------- serialised
    def _dispatch_serialised(self, insn: Instruction, now: int) -> int:
        """AMOs and syscalls: ROB is empty, handle like an in-order core."""
        assert self.state is not None
        state = self.state
        if insn.info.is_amo:
            if self._eas is not None:
                addr = self._eas[(state.pc - TEXT_BASE) >> 3](state.x)
            else:
                addr = effective_address(state, insn)
            result = self.l1d.access(addr, True)
            if result is not AccessResult.HIT:
                block = self.l1d.block_addr(addr)
                kind = EvKind.UPGRADE if result is AccessResult.UPGRADE else EvKind.GETX
                if block not in self._mshrs:
                    self.emit(Event(kind, block, self.core_id, now))
                    self._mshrs[block] = []  # retry dispatch after the fill
                self._fetch_stall_until = now + 1
                return 0
            if self.word_tracker is not None:
                self.word_tracker.observe_load(addr, self.core_id, now)
                ff = self.word_tracker.observe_store(addr, self.core_id, now)
                if ff and self.fastforward:
                    self._fetch_stall_until = max(self._fetch_stall_until, now + ff)
            do_amo(state, insn, self.memory, addr)
            state.pc += INSTRUCTION_BYTES
            self.committed += 1
            self._fetch_stall_until = now + self.l1d.config.hit_latency
            return 1
        # ECALL
        result = self.system.syscall(self.core_id, state, now)
        if result.wakes:
            self.pending_wakes.extend(result.wakes)
        if result.action is SysAction.EXIT:
            self.phase = CorePhase.HALTED
            state.halted = True
            self.committed += 1
            return 1
        if result.action is SysAction.BLOCK:
            # Do not reset _release_ts: the wake may already have arrived
            # (threaded engine); it is cleared on consumption.
            self._blocked = True
            self.phase = CorePhase.STALLED
            return 0
        state.pc += INSTRUCTION_BYTES
        self._fetch_stall_until = now + result.cost
        self.committed += 1
        return 1

    def _finish_blocking_syscall(self, now: int) -> tuple[int, bool]:
        assert self.state is not None
        self._blocked = False
        self._release_ts = None
        self.state.pc += INSTRUCTION_BYTES
        self.phase = CorePhase.ACTIVE
        self.committed += 1
        return 1, True
