"""Per-core models: architectural state, functional execution, timing cores.

Core threads in the slack engine own one timing core model each (in-order or
NetBurst-like out-of-order) together with its private L1 caches, mirroring
SlackSim's structure (paper Figure 1).
"""

from repro.cpu.arch import ArchState, TargetFault, TargetMemory
from repro.cpu.branch import (
    BimodalPredictor,
    GsharePredictor,
    StaticPredictor,
    make_predictor,
)
from repro.cpu.funcsim import do_amo, do_load, do_store, effective_address, execute
from repro.cpu.interfaces import CorePhase
from repro.cpu.interp import FunctionalInterpreter, InterpResult, run_functional
from repro.cpu.l1cache import MESI, AccessResult, L1Cache, L1Config
from repro.cpu.predecode import PredecodedProgram, predecode_program


def __getattr__(name: str):
    # The timing cores pull in repro.core (events) which pulls in the engine
    # and the loader, and the loader imports back into this package.  Loading
    # them lazily keeps `import repro.cpu` a leaf, so any package import
    # order (workloads-first, sysapi-first, ...) resolves cleanly.
    if name == "InOrderCore":
        from repro.cpu.inorder import InOrderCore

        return InOrderCore
    if name == "OoOCore":
        from repro.cpu.ooo import OoOCore

        return OoOCore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArchState",
    "TargetFault",
    "TargetMemory",
    "BimodalPredictor",
    "GsharePredictor",
    "StaticPredictor",
    "make_predictor",
    "do_amo",
    "do_load",
    "do_store",
    "effective_address",
    "execute",
    "InOrderCore",
    "CorePhase",
    "FunctionalInterpreter",
    "InterpResult",
    "run_functional",
    "MESI",
    "AccessResult",
    "L1Cache",
    "L1Config",
    "OoOCore",
    "PredecodedProgram",
    "predecode_program",
]
