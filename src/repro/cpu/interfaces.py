"""Core-model protocol shared by the timing cores and the slack engine.

A core model simulates one target core cycle-by-cycle: ``step(now)`` returns
``(committed, active)`` per cycle.  The surrounding
:class:`~repro.core.corethread.CoreThread` owns the clock protocol and the
event queues; the core model owns the pipeline state and its private L1.
Implementations: :class:`~repro.cpu.inorder.InOrderCore`,
:class:`~repro.cpu.ooo.OoOCore`,
:class:`~repro.workloads.synthetic.TraceCore`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # avoid a circular import (core.* imports this module)
    from repro.core.events import Event

__all__ = ["CorePhase", "CoreModel", "WAIT_EXTERNAL"]

#: Sentinel resume time returned by ``wait_state`` meaning "waiting on input
#: that only the manager can deliver (memory response, syscall wake)" — the
#: core cannot compute its own resume time, so the caller must bound the
#: batched wait and yield the turn.
WAIT_EXTERNAL = 1 << 62


class CorePhase(enum.Enum):
    """What the core is doing this cycle (drives the host cost model)."""

    IDLE = "idle"        # no workload thread assigned
    ACTIVE = "active"    # executing instructions
    STALLED = "stalled"  # waiting for memory / sync / multi-cycle op
    HALTED = "halted"    # workload thread exited


class CoreModel(Protocol):
    """Protocol implemented by InOrderCore, OoOCore and TraceCore."""

    core_id: int

    def activate(self, pc: int, arg: int, ts: int) -> None:
        """Assign a workload thread starting at *pc* with argument *arg*."""

    def step(self, now: int) -> tuple[int, bool]:
        """Simulate one target cycle at local time *now*.

        Returns ``(committed_instructions, active)`` where *active* is False
        for pure stall cycles (cheaper on the host).
        """

    def deliver_response(self, event: Event) -> None:
        """A memory response from the manager reached this core's InQ."""

    def apply_invalidation(self, addr: int) -> None: ...

    def apply_downgrade(self, addr: int) -> None: ...

    def release(self, release_ts: int) -> None:
        """Wake a BLOCK-ed syscall at simulated time *release_ts*."""

    @property
    def phase(self) -> CorePhase: ...

    def stall_hint(self, now: int) -> int | None:
        """If stalled until a known simulated time, return it (skip-ahead)."""

    # -- optional batched-stepping extension (see DESIGN.md §5) ------------
    #
    # Models that additionally implement the two methods below opt into the
    # engine's run-ahead fast path: while ``wait_state`` reports a wait, the
    # CoreThread advances local time in one jump (``skip``) instead of one
    # ``step`` call per cycle.  Implementations must guarantee that for a
    # wait spanning ``n`` cycles, ``skip(n)`` leaves the model in exactly the
    # state that ``n`` consecutive ``step`` calls would (same counters, same
    # pipeline state, no events emitted), so batched and single stepping are
    # behaviour-equivalent by construction.
    #
    # def wait_state(self, now: int) -> tuple[int, bool] | None:
    #     """None   -> the model wants a real ``step(now)`` (it may commit,
    #                  emit events, halt, or block this cycle);
    #     (resume, active) -> every cycle in [now, resume) is a pure wait
    #                  cycle accounted with the given active flag; ``resume``
    #                  is the next cycle needing a real step, or
    #                  WAIT_EXTERNAL when the wake must come from outside."""
    #
    # def skip(self, n: int) -> None:
    #     """Account n wait cycles at once (e.g. bump stall counters)."""
