"""Core-model protocol shared by the timing cores and the slack engine.

A core model simulates one target core cycle-by-cycle: ``step(now)`` returns
``(committed, active)`` per cycle.  The surrounding
:class:`~repro.core.corethread.CoreThread` owns the clock protocol and the
event queues; the core model owns the pipeline state and its private L1.
Implementations: :class:`~repro.cpu.inorder.InOrderCore`,
:class:`~repro.cpu.ooo.OoOCore`,
:class:`~repro.workloads.synthetic.TraceCore`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # avoid a circular import (core.* imports this module)
    from repro.core.events import Event

__all__ = ["CorePhase", "CoreModel"]


class CorePhase(enum.Enum):
    """What the core is doing this cycle (drives the host cost model)."""

    IDLE = "idle"        # no workload thread assigned
    ACTIVE = "active"    # executing instructions
    STALLED = "stalled"  # waiting for memory / sync / multi-cycle op
    HALTED = "halted"    # workload thread exited


class CoreModel(Protocol):
    """Protocol implemented by InOrderCore, OoOCore and TraceCore."""

    core_id: int

    def activate(self, pc: int, arg: int, ts: int) -> None:
        """Assign a workload thread starting at *pc* with argument *arg*."""

    def step(self, now: int) -> tuple[int, bool]:
        """Simulate one target cycle at local time *now*.

        Returns ``(committed_instructions, active)`` where *active* is False
        for pure stall cycles (cheaper on the host).
        """

    def deliver_response(self, event: Event) -> None:
        """A memory response from the manager reached this core's InQ."""

    def apply_invalidation(self, addr: int) -> None: ...

    def apply_downgrade(self, addr: int) -> None: ...

    def release(self, release_ts: int) -> None:
        """Wake a BLOCK-ed syscall at simulated time *release_ts*."""

    @property
    def phase(self) -> CorePhase: ...

    def stall_hint(self, now: int) -> int | None:
        """If stalled until a known simulated time, return it (skip-ahead)."""
