"""In-order, stall-on-miss timing core.

One instruction in flight: fetch/execute at the head cycle, then stay busy
for the instruction's unit latency; loads/stores access the private L1 and,
on a miss, issue a request into the core thread's OutQ and stall until the
manager's response arrives (paper §2.2's "simple in-order core that stalls
on a cache miss").

Functional effects follow isochrone semantics (paper §3.2): values are read
and written in the shared functional memory at the simulated moment the
access completes — L1 hits at the execute cycle, misses when the response is
applied.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.arch import ArchState, TargetMemory
from repro.cpu.funcsim import NEXT, do_amo, do_load, do_store, effective_address, execute
from repro.cpu.interfaces import WAIT_EXTERNAL, CorePhase
from repro.cpu.predecode import K_ECALL, K_HALT, K_JUMP, predecode_program, timing_blocks
from repro.cpu.l1cache import MESI, AccessResult, L1Cache
from repro.core.events import EvKind, Event
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import TEXT_BASE, Program
from repro.sysapi.system import SysAction, SystemEmulation
from repro.trace.capture import mem_acc, record_syscall
from repro.violations.detect import WordOrderTracker

__all__ = ["InOrderCore"]

_GRANT_TO_MESI = {"M": MESI.MODIFIED, "E": MESI.EXCLUSIVE, "S": MESI.SHARED}


class _PendingMem:
    __slots__ = ("insn", "addr", "block", "is_write", "is_ifetch")

    def __init__(self, insn: Instruction | None, addr: int, block: int, is_write: bool, is_ifetch: bool) -> None:
        self.insn = insn
        self.addr = addr
        self.block = block
        self.is_write = is_write
        self.is_ifetch = is_ifetch


class InOrderCore:
    """One target core with private L1 D-cache (and optional I-cache)."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        memory: TargetMemory,
        l1d: L1Cache,
        emit: Callable[[Event], None],
        system: SystemEmulation,
        *,
        l1i: L1Cache | None = None,
        word_tracker: WordOrderTracker | None = None,
        fastforward: bool = False,
        dispatch: str = "predecoded",
        tracer=None,
    ) -> None:
        self.core_id = core_id
        self.program = program
        self.memory = memory
        self.l1d = l1d
        self.l1i = l1i
        self.emit = emit
        self.system = system
        self.word_tracker = word_tracker
        self.fastforward = fastforward
        # Optional trace-capture recorder (repro.trace.capture.CoreRecorder).
        # None on direct runs: every commit site pays one `is not None` check.
        self._rec = tracer

        self.state: ArchState | None = None
        self.phase = CorePhase.IDLE
        self.committed = 0
        self.stall_cycles = 0
        self.pending_wakes: list[tuple[int, int]] = []

        self._text = program.text
        # Predecoded closure tables plus compiled timing superblocks: runs
        # of latency-1 register-only instructions execute as one call via
        # :meth:`block_step` (cycle-exact — see repro.cpu.predecode).  An
        # I-cache disables blocks: every fetch must probe it individually.
        if dispatch == "predecoded":
            pre = predecode_program(program)
            self._kinds: list | None = pre.kinds
            self._runs = pre.runs
            self._eas = pre.eas
            self._latencies = pre.latencies
            self._tblocks = timing_blocks(program) if l1i is None else None
        elif dispatch == "oracle":
            self._kinds = None
            self._tblocks = None
        else:
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        if self._tblocks is None:
            # Shadow the class method so CoreThread's hoisted
            # ``getattr(model, "block_step", None)`` skips the fast path
            # without a per-cycle gate.
            self.block_step = None
        self._busy_until = -1
        self._pending: _PendingMem | None = None
        self._resp: Event | None = None
        # Coherence messages that raced ahead of the in-flight grant (MESI
        # IM->I / IM->S transients): applied right after the fill so the
        # granted data is used once and the stolen line is not kept.
        self._pending_inval = False
        self._pending_down = False
        self._blocked = False
        self._release_ts: int | None = None
        self._ifetch_ok_pc = -1  # pc whose I-fetch already completed

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        # The predecoded dispatch tables are per-PC *closures* — unpicklable
        # and derived purely from the program, so checkpoints drop them and
        # __setstate__ re-derives via the program-memoised predecode pass.
        state = dict(self.__dict__)
        predecoded = state.pop("_kinds", None) is not None
        for key in ("_runs", "_eas", "_latencies"):
            state.pop(key, None)
        state["_pickle_predecoded"] = predecoded
        state["_pickle_tblocks"] = state.pop("_tblocks", None) is not None
        return state

    def __setstate__(self, state) -> None:
        predecoded = state.pop("_pickle_predecoded")
        tblocks = state.pop("_pickle_tblocks", False)
        self.__dict__.update(state)
        if predecoded:
            pre = predecode_program(self.program)
            self._kinds = pre.kinds
            self._runs = pre.runs
            self._eas = pre.eas
            self._latencies = pre.latencies
        else:
            self._kinds = None
        self._tblocks = timing_blocks(self.program) if tblocks else None

    # ------------------------------------------------------------ lifecycle
    def activate(self, pc: int, arg: int, ts: int) -> None:
        if self.phase not in (CorePhase.IDLE, CorePhase.HALTED):
            raise RuntimeError(f"core {self.core_id} activated while {self.phase}")
        assert self.state is not None, "bind a context before activating"
        if self._pending is not None or self._blocked:
            raise RuntimeError(f"core {self.core_id} reactivated with in-flight state")
        self.state.pc = pc
        self.state.halted = False
        self.state.set_x(10, arg)  # a0
        self._busy_until = -1
        self._ifetch_ok_pc = -1
        self.phase = CorePhase.ACTIVE

    def bind_context(self, state: ArchState) -> None:
        self.state = state

    # ------------------------------------------------------------- delivery
    def deliver_response(self, event: Event) -> None:
        if self._pending is None:
            raise RuntimeError(f"core {self.core_id}: response {event} with nothing pending")
        self._resp = event

    def apply_invalidation(self, addr: int) -> None:
        if self._pending is not None and self.l1d.block_addr(addr) == self._pending.block:
            self._pending_inval = True
        self.l1d.invalidate(addr)
        if self.l1i is not None:
            self.l1i.invalidate(addr)

    def apply_downgrade(self, addr: int) -> None:
        if self._pending is not None and self.l1d.block_addr(addr) == self._pending.block:
            self._pending_down = True
        self.l1d.downgrade(addr)

    def release(self, release_ts: int) -> None:
        """Arm the wake-up for a BLOCK-ed syscall.

        May legitimately arrive *before* this core observes the BLOCK result
        in the threaded engine (the releaser runs concurrently); the value is
        consumed exactly once when the blocking syscall finishes.
        """
        self._release_ts = release_ts

    @property
    def spinning(self) -> bool:
        """True while blocked in a sync spin loop (full host cost class)."""
        return self._blocked

    def stall_hint(self, now: int) -> int | None:
        if self._blocked and self._release_ts is not None and self._release_ts > now:
            return self._release_ts
        if self._pending is None and now <= self._busy_until:
            return self._busy_until + 1
        return None

    # ---------------------------------------------------- batched stepping
    def wait_state(self, now: int) -> tuple[int, bool] | None:
        """Classify the current cycle for the run-ahead fast path.

        Pure wait stretches (frozen pipeline, spin wait, multi-cycle op) are
        reported with their resume time so the CoreThread can jump them in
        one call; ``None`` demands a real :meth:`step`.
        """
        if self._blocked:
            release = self._release_ts
            if release is None:
                return WAIT_EXTERNAL, True  # spinning until an external wake
            if release > now:
                return release, True  # spinning until a known release
            return None  # finish the blocking syscall this cycle
        if self._pending is not None:
            if self._resp is not None:
                return None  # complete the memory access this cycle
            return WAIT_EXTERNAL, False  # frozen pipeline, response pending
        if now <= self._busy_until:
            return self._busy_until + 1, False  # multi-cycle op in flight
        return None

    def skip(self, n: int) -> None:
        """Account *n* wait cycles at once (≡ n wait ``step`` calls)."""
        if self._blocked or self._pending is not None:
            self.stall_cycles += n

    def block_step(self, now: int, limit: int) -> int:
        """Run one compiled timing superblock; returns cycles consumed.

        0 means "no block applies here" and the caller falls back to the
        per-instruction :meth:`step`.  Only legal on a cycle whose
        :meth:`wait_state` is ``None``: the extra ``_pending``/``_blocked``
        guard rejects the two non-fetch reasons for that (a response to
        complete, a blocking syscall to finish).  *limit* is the largest
        cycle count the caller can accept — blocks never cross the turn
        budget, the window edge, or the next queued InQ event, so every
        outside interaction lands on the same cycle as per-instruction
        stepping (the dispatch-differential tests pin this).
        """
        if self._pending is not None or self._blocked:
            return 0
        tb = self._tblocks
        state = self.state
        pc = state.pc
        index = (pc - TEXT_BASE) >> 3
        if pc & 7 or not 0 <= index < tb.size:
            return 0
        n = tb.lens[index]
        if n == 0 or n > limit:
            return 0
        state.pc = tb.runs[index](state.x, state.f)
        self._busy_until = now + n - 1
        self._ifetch_ok_pc = -1
        self.committed += n
        if self._rec is not None:
            self._rec.run_n(n)
        return n

    # ----------------------------------------------------------------- step
    def step(self, now: int) -> tuple[int, bool]:
        if self.phase in (CorePhase.IDLE, CorePhase.HALTED):
            return 0, False
        if self._blocked:
            if self._release_ts is not None and now >= self._release_ts:
                return self._finish_blocking_syscall(now)
            # A blocked workload thread spins in target code (load flag,
            # branch): the core thread simulates real instructions, so the
            # host pays full per-cycle cost.  This is what keeps de-facto
            # slack bounded under SU on a fair host (paper §4.2.2's
            # "surprisingly low" unbounded-slack errors) — unlike memory
            # stalls, where the frozen pipeline is cheap to simulate.
            self.stall_cycles += 1
            return 0, True
        if self._pending is not None:
            if self._resp is not None:
                return self._complete_mem(now)
            self.stall_cycles += 1
            return 0, False
        if now <= self._busy_until:
            return 0, False  # frozen while a multi-cycle op drains (cheap)
        return self._fetch_execute(now)

    # ----------------------------------------------------------- sub-phases
    def _finish_blocking_syscall(self, now: int) -> tuple[int, bool]:
        assert self.state is not None
        self._blocked = False
        self._release_ts = None
        self.state.pc += INSTRUCTION_BYTES
        self._busy_until = now  # resume costs this cycle
        self.phase = CorePhase.ACTIVE
        self.committed += 1
        return 1, True

    def _fetch(self, pc: int) -> Instruction:
        index = (pc - TEXT_BASE) >> 3
        if not 0 <= index < len(self._text) or pc & 7:
            raise RuntimeError(f"core {self.core_id}: PC {pc:#x} outside text segment")
        return self._text[index]

    def _fetch_execute(self, now: int) -> tuple[int, bool]:
        assert self.state is not None
        state = self.state
        pc = state.pc

        # Optional I-cache: model a GETS for the text block on a miss.
        if self.l1i is not None and self._ifetch_ok_pc != pc:
            if self.l1i.access(pc, False) is not AccessResult.HIT:
                block = self.l1i.block_addr(pc)
                self.emit(Event(EvKind.GETS, block, self.core_id, now))
                self._pending = _PendingMem(None, pc, block, False, True)
                self.phase = CorePhase.STALLED
                return 0, True
            self._ifetch_ok_pc = pc

        kinds = self._kinds
        if kinds is not None:
            index = (pc - TEXT_BASE) >> 3
            if not 0 <= index < len(kinds) or pc & 7:
                self._fetch(pc)  # raises the canonical out-of-text error
            kind = kinds[index]
            if kind <= K_JUMP:  # register-only: simple / branch / jump
                target = self._runs[index](state.x, state.f)
                state.pc = pc + INSTRUCTION_BYTES if target is None else target
                self._busy_until = now + self._latencies[index] - 1
                self._ifetch_ok_pc = -1
                self.committed += 1
                if self._rec is not None:
                    self._rec.run(self._latencies[index])
                return 1, True
            if kind == K_ECALL:
                return self._execute_syscall(now)
            if kind == K_HALT:
                state.halted = True
                self.phase = CorePhase.HALTED
                self.committed += 1
                if self._rec is not None:
                    self._rec.halt()
                return 1, True
            return self._execute_mem(self._text[index], now, self._eas[index](state.x))

        insn = self._fetch(pc)
        info = insn.info
        if info.is_load or info.is_store:
            return self._execute_mem(insn, now)

        outcome = execute(state, insn)  # register-only semantics
        if outcome.is_syscall:
            return self._execute_syscall(now)
        if outcome.is_halt:
            self.phase = CorePhase.HALTED
            self.committed += 1
            if self._rec is not None:
                self._rec.halt()
            return 1, True
        state.pc = state.pc + INSTRUCTION_BYTES if outcome.next_pc is NEXT else outcome.next_pc
        self._busy_until = now + info.latency - 1
        self._ifetch_ok_pc = -1
        self.committed += 1
        if self._rec is not None:
            self._rec.run(info.latency)
        return 1, True

    def _execute_mem(self, insn: Instruction, now: int, addr: int | None = None) -> tuple[int, bool]:
        assert self.state is not None
        info = insn.info
        if addr is None:
            addr = effective_address(self.state, insn)
        if self._rec is not None:
            self._rec.mem(mem_acc(info), info.latency, addr)
        is_write = info.is_store  # AMOs count as writes for coherence
        result = self.l1d.access(addr, is_write)
        if result is AccessResult.HIT:
            self._apply_mem_functional(insn, addr, now)
            self._busy_until = now + max(self.l1d.config.hit_latency, info.latency) - 1
            self.state.pc += INSTRUCTION_BYTES
            self._ifetch_ok_pc = -1
            self.committed += 1
            return 1, True
        block = self.l1d.block_addr(addr)
        if result is AccessResult.UPGRADE:
            kind = EvKind.UPGRADE
        else:
            kind = EvKind.GETX if is_write else EvKind.GETS
        self.emit(Event(kind, block, self.core_id, now))
        self._pending = _PendingMem(insn, addr, block, is_write, False)
        self.phase = CorePhase.STALLED
        return 0, True  # the issue cycle itself is active work

    def _complete_mem(self, now: int) -> tuple[int, bool]:
        assert self.state is not None
        pending = self._pending
        resp = self._resp
        assert pending is not None and resp is not None
        self._pending = None
        self._resp = None
        grant = _GRANT_TO_MESI.get(resp.grant or "")
        if grant is None:
            raise RuntimeError(f"core {self.core_id}: response without grant: {resp}")
        cache = self.l1i if pending.is_ifetch and self.l1i is not None else self.l1d
        victim = cache.fill(pending.block, grant)
        if victim is not None:
            self.emit(Event(EvKind.PUTM, victim, self.core_id, now))
        if self._pending_inval:
            cache.invalidate(pending.block)
        elif self._pending_down:
            cache.downgrade(pending.block)
        self._pending_inval = self._pending_down = False
        self.phase = CorePhase.ACTIVE
        if pending.is_ifetch:
            self._ifetch_ok_pc = pending.addr
            self._busy_until = now  # re-fetch next cycle
            return 0, True
        assert pending.insn is not None
        self._apply_mem_functional(pending.insn, pending.addr, now)
        self._busy_until = now + self.l1d.config.hit_latency - 1
        self.state.pc += INSTRUCTION_BYTES
        self._ifetch_ok_pc = -1
        self.committed += 1
        return 1, True

    def _apply_mem_functional(self, insn: Instruction, addr: int, now: int) -> None:
        """Touch the shared functional memory at simulated time *now*."""
        assert self.state is not None
        info = insn.info
        if info.is_amo:
            if self.word_tracker is not None:
                self.word_tracker.observe_load(addr, self.core_id, now)
                ff = self.word_tracker.observe_store(addr, self.core_id, now)
                if ff and self.fastforward:
                    self._busy_until = now + ff
            do_amo(self.state, insn, self.memory, addr)
        elif info.is_store:
            if self.word_tracker is not None:
                ff = self.word_tracker.observe_store(addr, self.core_id, now)
                if ff and self.fastforward:
                    self._busy_until = now + ff
            do_store(self.state, insn, self.memory, addr)
        else:
            if self.word_tracker is not None:
                self.word_tracker.observe_load(addr, self.core_id, now)
            do_load(self.state, insn, self.memory, addr)

    def _execute_syscall(self, now: int) -> tuple[int, bool]:
        assert self.state is not None
        rec = self._rec
        if rec is not None:
            # Snapshot the argument registers before the emulation mutates
            # them (spawn writes the tid into a0); recorded post-call so the
            # resolved result (assigned tid/core) is available.
            x = self.state.x
            num, a0, a1, fa0 = x[17], x[10], x[11], self.state.f[10]
        result = self.system.syscall(self.core_id, self.state, now)
        if rec is not None:
            record_syscall(rec, num, a0, a1, fa0, self.system, self.state)
        if result.wakes:
            self.pending_wakes.extend(result.wakes)
        if result.action is SysAction.EXIT:
            self.phase = CorePhase.HALTED
            self.state.halted = True
            self.committed += 1
            return 1, True
        if result.action is SysAction.BLOCK:
            # Do not reset _release_ts: the wake may already have arrived
            # (threaded engine); it is cleared on consumption.
            self._blocked = True
            self.phase = CorePhase.STALLED
            return 0, True
        self.state.pc += INSTRUCTION_BYTES
        self._busy_until = now + result.cost - 1
        self._ifetch_ok_pc = -1
        self.committed += 1
        return 1, True
