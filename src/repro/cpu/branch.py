"""Branch predictors for the timing cores.

Three classic designs: always-not-taken (static), a bimodal table of 2-bit
saturating counters, and gshare (global history XOR PC).  The OoO core uses
a predictor for fetch redirect timing; mispredictions cost a configurable
flush penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import is_pow2

__all__ = ["StaticPredictor", "BimodalPredictor", "GsharePredictor", "PredictorStats", "make_predictor"]


@dataclass
class PredictorStats:
    lookups: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class StaticPredictor:
    """Always predicts not-taken (backward-taken variant optional)."""

    def __init__(self, backward_taken: bool = True) -> None:
        self.backward_taken = backward_taken
        self.stats = PredictorStats()

    def predict(self, pc: int, target_offset: int = 0) -> bool:
        self.stats.lookups += 1
        return self.backward_taken and target_offset < 0

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken == predicted:
            self.stats.correct += 1


class BimodalPredictor:
    """Per-PC table of 2-bit saturating counters."""

    def __init__(self, entries: int = 1024) -> None:
        if not is_pow2(entries):
            raise ValueError("predictor table size must be a power of two")
        self.mask = entries - 1
        self.table = [1] * entries  # weakly not-taken
        self.stats = PredictorStats()

    def predict(self, pc: int, target_offset: int = 0) -> bool:
        self.stats.lookups += 1
        return self.table[(pc >> 3) & self.mask] >= 2

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken == predicted:
            self.stats.correct += 1
        index = (pc >> 3) & self.mask
        counter = self.table[index]
        self.table[index] = min(3, counter + 1) if taken else max(0, counter - 1)


class GsharePredictor:
    """Global-history predictor: PC XOR history indexes the counter table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if not is_pow2(entries):
            raise ValueError("predictor table size must be a power of two")
        self.mask = entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.table = [1] * entries
        self.history = 0
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 3) ^ self.history) & self.mask

    def predict(self, pc: int, target_offset: int = 0) -> bool:
        self.stats.lookups += 1
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken == predicted:
            self.stats.correct += 1
        index = self._index(pc)
        counter = self.table[index]
        self.table[index] = min(3, counter + 1) if taken else max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


def make_predictor(kind: str, **kwargs):
    """Factory: ``static`` / ``bimodal`` / ``gshare``."""
    if kind == "static":
        return StaticPredictor(**kwargs)
    if kind == "bimodal":
        return BimodalPredictor(**kwargs)
    if kind == "gshare":
        return GsharePredictor(**kwargs)
    raise ValueError(f"unknown predictor kind {kind!r}")
