"""SlackSim reproduction: slack-based parallel CMP-on-CMP simulation.

Reproduces *Exploiting Simulation Slack to Improve Parallel Simulation
Speed* (Chen, Annavaram, Dubois — ICPP 2009).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public API highlights
---------------------
- :mod:`repro.isa` / :mod:`repro.lang`: the SPISA toolchain (assembler and
  the Slang mini-C compiler).
- :mod:`repro.core`: the slack simulation engine — schemes ``cc``, ``qN``,
  ``lN``, ``sN``, ``sN*``, ``su``; sequential deterministic engine and the
  Pthreads-style threaded engine.
- :mod:`repro.workloads`: SPLASH-2-style parallel benchmarks (fft, lu,
  barnes, water) plus synthetic trace workloads.
- :mod:`repro.experiments`: one entry point per paper table/figure.
"""

__version__ = "1.0.0"
