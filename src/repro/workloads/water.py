"""Water-Nsquared benchmark (SPLASH-2 Water-Nsquared stand-in).

Lennard-Jones molecular dynamics in 2-D with the O(N^2) pairwise force loop
of Water-Nsquared, including its signature synchronization pattern: each
thread owns a stripe of molecules but pair interactions update *both*
molecules' force accumulators under **per-molecule locks**, followed by a
barrier-separated integration phase and a lock-protected global energy
reduction.

Oracle: the identical MD step in numpy (tolerance covers lock-order
dependent floating-point accumulation order).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_water", "water_source"]

_DT = 0.002
_EPS = 0.2


def water_source(nmol: int, steps: int, nthreads: int) -> str:
    return f"""
// Water-Nsquared: {nmol} molecules, {steps} steps, {nthreads} threads.
{SLANG_LCG}
float px[{nmol}]; float py[{nmol}];
float vx[{nmol}]; float vy[{nmol}];
float fx[{nmol}]; float fy[{nmol}];
int mlocks[{nmol}];
float energy;
int elock;
int bar;
int tids[{nthreads}];

void water_worker(int tid) {{
    for (int s = 0; s < {steps}; s = s + 1) {{
        // Clear owned force accumulators.
        for (int i = tid; i < {nmol}; i = i + {nthreads}) {{
            fx[i] = 0.0;
            fy[i] = 0.0;
        }}
        barrier(&bar);
        // Pairwise LJ forces: owner of i computes pairs (i, j>i) and
        // updates both sides under per-molecule locks (Water-Nsquared).
        float local_e = 0.0;
        for (int i = tid; i < {nmol}; i = i + {nthreads}) {{
            for (int j = i + 1; j < {nmol}; j = j + 1) {{
                float dx = px[j] - px[i];
                float dy = py[j] - py[i];
                float r2 = dx * dx + dy * dy + {_EPS};
                float inv2 = 1.0 / r2;
                float inv6 = inv2 * inv2 * inv2;
                float coef = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                float gx = coef * dx;
                float gy = coef * dy;
                local_e = local_e + 4.0 * inv6 * (inv6 - 1.0);
                lock(&mlocks[i]);
                fx[i] = fx[i] - gx;
                fy[i] = fy[i] - gy;
                unlock(&mlocks[i]);
                lock(&mlocks[j]);
                fx[j] = fx[j] + gx;
                fy[j] = fy[j] + gy;
                unlock(&mlocks[j]);
            }}
        }}
        lock(&elock);
        energy = energy + local_e;
        unlock(&elock);
        barrier(&bar);
        // Integrate owned molecules.
        for (int i = tid; i < {nmol}; i = i + {nthreads}) {{
            vx[i] = vx[i] + fx[i] * {_DT};
            vy[i] = vy[i] + fy[i] * {_DT};
            px[i] = px[i] + vx[i] * {_DT};
            py[i] = py[i] + vy[i] * {_DT};
        }}
        barrier(&bar);
    }}
}}

int main() {{
    lcg_state = 19890627;
    init_barrier(&bar, {nthreads});
    init_lock(&elock);
    energy = 0.0;
    for (int i = 0; i < {nmol}; i = i + 1) {{
        init_lock(&mlocks[i]);
        px[i] = lcg_next() * 4.0;
        py[i] = lcg_next() * 4.0;
        vx[i] = (lcg_next() - 0.5) * 0.2;
        vy[i] = (lcg_next() - 0.5) * 0.2;
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(water_worker, t);
    water_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    float sp = 0.0;
    float sv = 0.0;
    for (int i = 0; i < {nmol}; i = i + 1) {{
        sp = sp + px[i] + py[i];
        sv = sv + vx[i] * vx[i] + vy[i] * vy[i];
    }}
    print_float(sp);
    print_float(sv);
    print_float(energy);
    return 0;
}}
"""


def _oracle(nmol: int, steps: int) -> list[float]:
    stream = iter(lcg_stream(19890627, 4 * nmol))
    px = np.zeros(nmol)
    py = np.zeros(nmol)
    vx = np.zeros(nmol)
    vy = np.zeros(nmol)
    for i in range(nmol):
        px[i] = next(stream) * 4.0
        py[i] = next(stream) * 4.0
        vx[i] = (next(stream) - 0.5) * 0.2
        vy[i] = (next(stream) - 0.5) * 0.2
    energy = 0.0
    for _ in range(steps):
        fx = np.zeros(nmol)
        fy = np.zeros(nmol)
        for i in range(nmol):
            for j in range(i + 1, nmol):
                dx = px[j] - px[i]
                dy = py[j] - py[i]
                r2 = dx * dx + dy * dy + _EPS
                inv2 = 1.0 / r2
                inv6 = inv2 ** 3
                coef = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2
                fx[i] -= coef * dx
                fy[i] -= coef * dy
                fx[j] += coef * dx
                fy[j] += coef * dy
                energy += 4.0 * inv6 * (inv6 - 1.0)
        vx += fx * _DT
        vy += fy * _DT
        px += vx * _DT
        py += vy * _DT
    sp = float((px + py).sum())
    sv = float((vx * vx + vy * vy).sum())
    return [sp, sv, float(energy)]


def make_water(nmol: int = 12, steps: int = 2, nthreads: int = 8) -> Workload:
    """Build the Water workload (paper input set: 216 molecules, scaled)."""
    return build(
        name="water",
        source=water_source(nmol, steps, nthreads),
        params={"nmol": nmol, "steps": steps, "nthreads": nthreads},
        expected=_oracle(nmol, steps),
        tolerance=1e-6,
        input_set=f"{nmol} molecules, {steps} steps",
    )
