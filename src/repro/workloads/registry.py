"""Workload registry: name -> factory, plus the paper's Table 2 scalings.

``make_workload("fft")`` uses test-scale defaults; ``scale="paper"`` uses
inputs closer to Table 2 (still reduced — pure-Python interpretation cannot
run 100M instructions; DESIGN.md §2 records the substitution).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.barnes import make_barnes
from repro.workloads.base import Workload
from repro.workloads.fft import make_fft
from repro.workloads.lu import make_lu
from repro.workloads.ocean import make_ocean
from repro.workloads.radix import make_radix
from repro.workloads.water import make_water

__all__ = ["WORKLOADS", "make_workload", "BENCHMARKS", "ALL_BENCHMARKS", "SCALES"]

#: Benchmark factory table.
WORKLOADS: dict[str, Callable[..., Workload]] = {
    "fft": make_fft,
    "lu": make_lu,
    "barnes": make_barnes,
    "water": make_water,
    "radix": make_radix,
    "ocean": make_ocean,
}

#: Order used by the paper's figures/tables (the four it names).
BENCHMARKS = ("barnes", "fft", "lu", "water")

#: The paper says "six parallel benchmarks" but names only four; radix and
#: ocean round out the suite as the obvious SPLASH-2 members.
ALL_BENCHMARKS = BENCHMARKS + ("radix", "ocean")

#: Named input scales: parameters per benchmark.
SCALES: dict[str, dict[str, dict]] = {
    # Fast: unit/integration test scale (a few thousand instructions).
    "tiny": {
        "fft": dict(n=16, nthreads=4),
        "lu": dict(n=8, nthreads=4),
        "barnes": dict(nbodies=8, steps=1, nthreads=4),
        "water": dict(nmol=6, steps=1, nthreads=4),
        "radix": dict(nkeys=32, passes=2, nthreads=4),
        "ocean": dict(n=8, sweeps=1, nthreads=4),
    },
    # Default: benchmark-harness scale (tens of thousands of instructions).
    "small": {
        "fft": dict(n=64, nthreads=8),
        "lu": dict(n=16, nthreads=8),
        "barnes": dict(nbodies=16, steps=2, nthreads=8),
        "water": dict(nmol=12, steps=2, nthreads=8),
        "radix": dict(nkeys=96, passes=2, nthreads=8),
        "ocean": dict(n=12, sweeps=2, nthreads=8),
    },
    # Closer to Table 2 shape (hundreds of thousands of instructions).
    "paper": {
        "fft": dict(n=256, nthreads=8),
        "lu": dict(n=32, nthreads=8),
        "barnes": dict(nbodies=48, steps=3, nthreads=8),
        "water": dict(nmol=32, steps=3, nthreads=8),
        "radix": dict(nkeys=512, passes=3, nthreads=8),
        "ocean": dict(n=24, sweeps=3, nthreads=8),
    },
}


def make_workload(name: str, scale: str = "small", **overrides) -> Workload:
    """Build a registered workload at a named scale."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    params = dict(SCALES[scale][name])
    params.update(overrides)
    return WORKLOADS[name](**params)
