"""LU benchmark (SPLASH-2 LU stand-in).

Right-looking LU factorization without pivoting of a diagonally-dominant
dense matrix.  Rows are distributed round-robin over threads; each
elimination step ``k`` updates the trailing submatrix in parallel with a
barrier per step — the classic SPLASH-2 LU dependence structure (scaled from
contiguous blocks to row-cyclic for clarity).

Oracle: the identical elimination in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_lu", "lu_source"]


def lu_source(n: int, nthreads: int) -> str:
    return f"""
// LU: {n}x{n} right-looking factorization on {nthreads} threads.
{SLANG_LCG}
float A[{n * n}];
int bar;
int tids[{nthreads}];

void lu_worker(int tid) {{
    for (int k = 0; k < {n}; k = k + 1) {{
        float pivot = A[k * {n} + k];
        for (int i = k + 1; i < {n}; i = i + 1) {{
            if (i % {nthreads} != tid) continue;
            float factor = A[i * {n} + k] / pivot;
            A[i * {n} + k] = factor;
            for (int j = k + 1; j < {n}; j = j + 1) {{
                A[i * {n} + j] = A[i * {n} + j] - factor * A[k * {n} + j];
            }}
        }}
        barrier(&bar);
    }}
}}

int main() {{
    lcg_state = 19950624;
    init_barrier(&bar, {nthreads});
    for (int i = 0; i < {n}; i = i + 1) {{
        for (int j = 0; j < {n}; j = j + 1) {{
            float v = lcg_next();
            if (i == j) v = v + {float(n)};
            A[i * {n} + j] = v;
        }}
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(lu_worker, t);
    lu_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    // Checksums over the packed LU factors.
    float total = 0.0;
    float diag = 0.0;
    for (int i = 0; i < {n}; i = i + 1) {{
        diag = diag + A[i * {n} + i];
        for (int j = 0; j < {n}; j = j + 1) total = total + fabs(A[i * {n} + j]);
    }}
    print_float(total);
    print_float(diag);
    print_float(A[{n} - 1]);
    return 0;
}}
"""


def _oracle(n: int) -> list[float]:
    stream = lcg_stream(19950624, n * n)
    a = np.array(stream, dtype=np.float64).reshape(n, n)
    a = a + np.eye(n) * float(n)
    for k in range(n):
        for i in range(k + 1, n):
            factor = a[i, k] / a[k, k]
            a[i, k] = factor
            a[i, k + 1 :] -= factor * a[k, k + 1 :]
    return [float(np.abs(a).sum()), float(np.trace(a)), float(a[0, n - 1])]


def make_lu(n: int = 16, nthreads: int = 8) -> Workload:
    """Build the LU workload (paper input set: 256x256, scaled down)."""
    return build(
        name="lu",
        source=lu_source(n, nthreads),
        params={"n": n, "nthreads": nthreads},
        expected=_oracle(n),
        tolerance=1e-9,
        input_set=f"{n} x {n} matrix",
    )
