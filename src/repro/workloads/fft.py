"""FFT benchmark (SPLASH-2 FFT stand-in, DESIGN.md §2).

Iterative radix-2 decimation-in-time FFT over a complex array held in two
shared float arrays.  Thread 0 seeds the data and performs the bit-reversal
permutation; all threads then split the butterfly blocks of each stage and
synchronise with a barrier per stage — the same barrier-phased,
shifting-ownership sharing pattern as SPLASH-2 FFT.

Oracle: ``numpy.fft.fft`` over the identical LCG-seeded input.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_fft", "fft_source"]


def fft_source(n: int, nthreads: int) -> str:
    if n & (n - 1) or n < 4:
        raise ValueError("FFT size must be a power of two >= 4")
    return f"""
// FFT: radix-2 DIT over {n} points on {nthreads} threads.
{SLANG_LCG}
float re[{n}];
float im[{n}];
int bar;
int tids[{nthreads}];

int bit_reverse(int v, int bits) {{
    int out = 0;
    for (int b = 0; b < bits; b = b + 1) {{
        out = (out << 1) | (v & 1);
        v = v >> 1;
    }}
    return out;
}}

void fft_worker(int tid) {{
    for (int len = 2; len <= {n}; len = len * 2) {{
        int half = len / 2;
        int blocks = {n} / len;
        for (int b = tid; b < blocks; b = b + {nthreads}) {{
            int base = b * len;
            for (int j = 0; j < half; j = j + 1) {{
                float ang = -6.283185307179586 * (float) j / (float) len;
                float wr = cos(ang);
                float wi = sin(ang);
                int i0 = base + j;
                int i1 = base + j + half;
                float tr = wr * re[i1] - wi * im[i1];
                float ti = wr * im[i1] + wi * re[i1];
                re[i1] = re[i0] - tr;
                im[i1] = im[i0] - ti;
                re[i0] = re[i0] + tr;
                im[i0] = im[i0] + ti;
            }}
        }}
        barrier(&bar);
    }}
}}

int main() {{
    int bits = 0;
    int tmp = {n};
    while (tmp > 1) {{ bits = bits + 1; tmp = tmp / 2; }}
    lcg_state = 20090713;
    init_barrier(&bar, {nthreads});
    // Seed in natural order, then store bit-reversed (DIT input order).
    float tre[{n}];
    float tim[{n}];
    for (int i = 0; i < {n}; i = i + 1) {{
        tre[i] = lcg_next() - 0.5;
        tim[i] = lcg_next() - 0.5;
    }}
    for (int i = 0; i < {n}; i = i + 1) {{
        int r = bit_reverse(i, bits);
        re[r] = tre[i];
        im[r] = tim[i];
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(fft_worker, t);
    fft_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    // Checksums: weighted sums of the spectrum.
    float sr = 0.0;
    float si = 0.0;
    for (int i = 0; i < {n}; i = i + 1) {{
        sr = sr + re[i];
        si = si + im[i];
    }}
    print_float(sr);
    print_float(si);
    print_float(re[1]);
    print_float(im[{n} / 2]);
    return 0;
}}
"""


def _oracle(n: int) -> list[float]:
    stream = lcg_stream(20090713, 2 * n)
    data = np.array(
        [stream[2 * i] - 0.5 + 1j * (stream[2 * i + 1] - 0.5) for i in range(n)]
    )
    spectrum = np.fft.fft(data)
    return [
        float(spectrum.real.sum()),
        float(spectrum.imag.sum()),
        float(spectrum[1].real),
        float(spectrum[n // 2].imag),
    ]


def make_fft(n: int = 64, nthreads: int = 8) -> Workload:
    """Build the FFT workload (paper input set: 64K points, scaled down)."""
    return build(
        name="fft",
        source=fft_source(n, nthreads),
        params={"n": n, "nthreads": nthreads},
        expected=_oracle(n),
        tolerance=1e-6,
        input_set=f"{n} points",
    )
