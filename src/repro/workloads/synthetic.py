"""Synthetic trace-driven workloads.

A :class:`TraceCore` plays a scripted sequence of operations without any ISA
state — the cheapest way to drive the slack engine in tests and ablations
where only the synchronization/memory *pattern* matters:

* ``("think", n)`` — n busy cycles of pure compute;
* ``("load", addr)`` / ``("store", addr)`` — one shared-memory access
  through a private L1 (GETS/GETX/UPGRADE traffic like the ISA cores);
* ``("halt",)`` — the workload thread finishes.

:func:`sharing_workload` generates a parametric multi-core mix of private
and shared accesses — the knob for contention ablations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.events import EvKind, Event
from repro.cpu.interfaces import WAIT_EXTERNAL, CorePhase
from repro.cpu.l1cache import MESI, AccessResult, L1Cache, L1Config

__all__ = ["TraceCore", "sharing_workload", "pingpong_workload", "uniform_think_workload"]

_GRANT_TO_MESI = {"M": MESI.MODIFIED, "E": MESI.EXCLUSIVE, "S": MESI.SHARED}


class TraceCore:
    """Scripted core model implementing the CoreModel protocol."""

    def __init__(self, core_id: int, script: list[tuple], l1: L1Cache | None = None) -> None:
        self.core_id = core_id
        self.script = script
        self.l1 = l1 or L1Cache(L1Config(size_bytes=8 * 1024, assoc=2))
        self.emit: Callable[[Event], None] | None = None  # bound by the engine
        self.phase = CorePhase.IDLE
        self.committed = 0
        self.pending_wakes: list[tuple[int, int]] = []
        self._pc = 0
        self._busy_until = -1
        self._pending_block: int | None = None
        self._pending_write = False
        self._resp: Event | None = None
        # Coherence messages that raced ahead of an in-flight grant (the
        # MESI IM->I / IM->S transients): remembered and applied right after
        # the fill, so the granted data is used exactly once and the stolen
        # line is not silently kept.
        self._pending_inval = False
        self._pending_down = False

    # --------------------------------------------------------- CoreModel API
    def activate(self, pc: int, arg: int, ts: int) -> None:
        self.phase = CorePhase.ACTIVE

    def deliver_response(self, event: Event) -> None:
        if self._pending_block is None:
            raise RuntimeError(f"trace core {self.core_id}: unexpected response")
        self._resp = event

    def apply_invalidation(self, addr: int) -> None:
        if self._pending_block is not None and self.l1.block_addr(addr) == self._pending_block:
            self._pending_inval = True
            return
        self.l1.invalidate(addr)

    def apply_downgrade(self, addr: int) -> None:
        if self._pending_block is not None and self.l1.block_addr(addr) == self._pending_block:
            self._pending_down = True
            return
        self.l1.downgrade(addr)

    def release(self, release_ts: int) -> None:
        raise RuntimeError("trace cores do not use blocking syscalls")

    def stall_hint(self, now: int) -> int | None:
        if self._pending_block is None and now <= self._busy_until:
            return self._busy_until + 1
        return None

    def wait_state(self, now: int) -> tuple[int, bool] | None:
        """Batched-stepping protocol (see :mod:`repro.cpu.interfaces`)."""
        if self._pending_block is not None:
            if self._resp is not None:
                return None  # fill the line this cycle
            return WAIT_EXTERNAL, False  # stalled on the manager's response
        if now <= self._busy_until:
            return self._busy_until + 1, False  # thinking
        return None

    def skip(self, n: int) -> None:
        """n wait cycles change no scripted state (≡ n wait ``step`` calls)."""

    def step(self, now: int) -> tuple[int, bool]:
        if self.phase in (CorePhase.IDLE, CorePhase.HALTED):
            return 0, False
        if self._pending_block is not None:
            if self._resp is None:
                return 0, False
            grant = _GRANT_TO_MESI[self._resp.grant or "E"]
            victim = self.l1.fill(self._pending_block, grant)
            if victim is not None:
                assert self.emit is not None
                self.emit(Event(EvKind.PUTM, victim, self.core_id, now))
            if self._pending_inval:
                self.l1.invalidate(self._pending_block)
            elif self._pending_down:
                self.l1.downgrade(self._pending_block)
            self._pending_inval = self._pending_down = False
            self._pending_block = None
            self._resp = None
            self.phase = CorePhase.ACTIVE
            self.committed += 1
            return 1, True
        if now <= self._busy_until:
            return 0, False  # thinking: cheap wait cycle (matches wait_state)
        if self._pc >= len(self.script):
            self.phase = CorePhase.HALTED
            return 0, True
        op = self.script[self._pc]
        self._pc += 1
        kind = op[0]
        if kind == "think":
            cycles = int(op[1])
            self._busy_until = now + cycles - 1
            self.committed += cycles
            return cycles, True
        if kind in ("load", "store"):
            addr = int(op[1])
            is_write = kind == "store"
            result = self.l1.access(addr, is_write)
            if result is AccessResult.HIT:
                self.committed += 1
                return 1, True
            block = self.l1.block_addr(addr)
            ev_kind = (
                EvKind.UPGRADE
                if result is AccessResult.UPGRADE
                else (EvKind.GETX if is_write else EvKind.GETS)
            )
            assert self.emit is not None
            self.emit(Event(ev_kind, block, self.core_id, now))
            self._pending_block = block
            self._pending_write = is_write
            self.phase = CorePhase.STALLED
            return 0, True
        if kind == "halt":
            self.phase = CorePhase.HALTED
            return 0, True
        raise ValueError(f"unknown trace op {op!r}")


def uniform_think_workload(num_cores: int, cycles: int) -> list[TraceCore]:
    """Pure-compute cores: the embarrassingly-parallel baseline."""
    return [TraceCore(i, [("think", cycles), ("halt",)]) for i in range(num_cores)]


def sharing_workload(
    num_cores: int,
    ops_per_core: int,
    *,
    shared_fraction: float = 0.2,
    write_fraction: float = 0.3,
    think_cycles: int = 4,
    shared_blocks: int = 16,
    seed: int = 1,
) -> list[TraceCore]:
    """Parametric mix of private and shared accesses with think time."""
    rng = np.random.Generator(np.random.PCG64(seed))
    cores = []
    for core in range(num_cores):
        script: list[tuple] = []
        private_base = 0x10_0000 + core * 0x1_0000
        for _ in range(ops_per_core):
            if think_cycles:
                script.append(("think", int(rng.integers(1, think_cycles + 1))))
            shared = rng.random() < shared_fraction
            write = rng.random() < write_fraction
            if shared:
                addr = 0x20_0000 + int(rng.integers(0, shared_blocks)) * 64
            else:
                addr = private_base + int(rng.integers(0, 64)) * 64
            script.append(("store" if write else "load", addr))
        script.append(("halt",))
        cores.append(TraceCore(core, script))
    return cores


def pingpong_workload(num_cores: int, rounds: int, *, block: int = 0x20_0000) -> list[TraceCore]:
    """All cores repeatedly write one block: worst-case coherence ping-pong.

    Per-core think times are deliberately skewed so cores desynchronise under
    slack and requests reach the manager out of timestamp order.
    """
    cores = []
    spread = 12
    for core in range(num_cores):
        script: list[tuple] = []
        for r in range(rounds):
            script.append(("think", 1 + (core * spread + r) % (spread * num_cores)))
            script.append(("store", block))
        script.append(("halt",))
        cores.append(TraceCore(core, script))
    return cores
