"""Ocean benchmark (SPLASH-2 OCEAN stand-in).

Red-black Gauss-Seidel relaxation on a square grid with fixed boundary
values — the computational core of OCEAN's multigrid solver, at a single
grid level.  Rows are striped over threads; each colour sweep ends in a
barrier, and every sweep reads the neighbouring threads' boundary rows —
the nearest-neighbour producer/consumer sharing pattern OCEAN is known for.

Oracle: the identical red-black sweeps in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_ocean", "ocean_source"]


def ocean_source(n: int, sweeps: int, nthreads: int) -> str:
    return f"""
// OCEAN: {n}x{n} grid, {sweeps} red-black sweeps, {nthreads} threads.
{SLANG_LCG}
float grid[{n * n}];
int bar;
int tids[{nthreads}];

void ocean_worker(int tid) {{
    for (int s = 0; s < {sweeps}; s = s + 1) {{
        for (int colour = 0; colour < 2; colour = colour + 1) {{
            for (int i = 1 + tid; i < {n} - 1; i = i + {nthreads}) {{
                for (int j = 1; j < {n} - 1; j = j + 1) {{
                    if ((i + j) % 2 != colour) continue;
                    grid[i * {n} + j] = 0.25 * (
                        grid[(i - 1) * {n} + j] + grid[(i + 1) * {n} + j]
                        + grid[i * {n} + j - 1] + grid[i * {n} + j + 1]);
                }}
            }}
            barrier(&bar);
        }}
    }}
}}

int main() {{
    lcg_state = 19950301;
    init_barrier(&bar, {nthreads});
    for (int i = 0; i < {n}; i = i + 1) {{
        for (int j = 0; j < {n}; j = j + 1) {{
            grid[i * {n} + j] = lcg_next();
        }}
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(ocean_worker, t);
    ocean_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    float total = 0.0;
    float interior = 0.0;
    for (int i = 0; i < {n}; i = i + 1) {{
        for (int j = 0; j < {n}; j = j + 1) {{
            total = total + grid[i * {n} + j];
            if (i > 0) {{ if (i < {n} - 1) {{ if (j > 0) {{ if (j < {n} - 1) {{
                interior = interior + grid[i * {n} + j];
            }} }} }} }}
        }}
    }}
    print_float(total);
    print_float(interior);
    print_float(grid[{n} + 1]);
    return 0;
}}
"""


def _oracle(n: int, sweeps: int) -> list[float]:
    stream = lcg_stream(19950301, n * n)
    grid = np.array(stream, dtype=np.float64).reshape(n, n)
    for _ in range(sweeps):
        for colour in range(2):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    if (i + j) % 2 != colour:
                        continue
                    grid[i, j] = 0.25 * (
                        grid[i - 1, j] + grid[i + 1, j] + grid[i, j - 1] + grid[i, j + 1]
                    )
    total = float(grid.sum())
    interior = float(grid[1:-1, 1:-1].sum())
    return [total, interior, float(grid[1, 1])]


def make_ocean(n: int = 10, sweeps: int = 2, nthreads: int = 8) -> Workload:
    """Build the OCEAN workload (SPLASH-2 input: 258x258, scaled down)."""
    return build(
        name="ocean",
        source=ocean_source(n, sweeps, nthreads),
        params={"n": n, "sweeps": sweeps, "nthreads": nthreads},
        expected=_oracle(n, sweeps),
        tolerance=1e-9,
        input_set=f"{n} x {n} grid, {sweeps} sweeps",
    )
