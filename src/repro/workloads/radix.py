"""Radix benchmark (SPLASH-2 RADIX stand-in).

Parallel LSD radix sort: per pass, each thread histograms its stripe of keys
for one digit, thread 0 builds the global per-thread/per-digit offsets
(exclusive prefix sum over the rank-major histogram matrix, exactly
SPLASH-2's key exchange), then every thread scatters its stripe — three
barrier-separated phases per pass.  Dense barrier traffic plus heavy
shared-array streaming makes this the coherence-bandwidth-bound member of
the suite.

Oracle: Python's sort over the identical LCG key stream.
"""

from __future__ import annotations

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_radix", "radix_source"]

_DIGIT_BITS = 4
_RADIX = 1 << _DIGIT_BITS


def radix_source(nkeys: int, passes: int, nthreads: int) -> str:
    hist_words = nthreads * _RADIX
    return f"""
// RADIX: {nkeys} keys, {passes} x {_DIGIT_BITS}-bit passes, {nthreads} threads.
{SLANG_LCG}
int keys[{nkeys}];
int temp[{nkeys}];
int hist[{hist_words}];      // [thread][digit]
int offsets[{hist_words}];   // [thread][digit] -> scatter base
int bar;
int tids[{nthreads}];

void radix_worker(int tid) {{
    int lo = tid * {nkeys} / {nthreads};
    int hi = (tid + 1) * {nkeys} / {nthreads};
    for (int p = 0; p < {passes}; p = p + 1) {{
        int shift = p * {_DIGIT_BITS};
        // Phase 1: local histogram.
        for (int d = 0; d < {_RADIX}; d = d + 1) hist[tid * {_RADIX} + d] = 0;
        for (int i = lo; i < hi; i = i + 1) {{
            int d = (keys[i] >> shift) & {_RADIX - 1};
            hist[tid * {_RADIX} + d] = hist[tid * {_RADIX} + d] + 1;
        }}
        barrier(&bar);
        // Phase 2: thread 0 builds global offsets (digit-major order, then
        // by thread rank within a digit -> stable sort).
        if (tid == 0) {{
            int run = 0;
            for (int d = 0; d < {_RADIX}; d = d + 1) {{
                for (int t = 0; t < {nthreads}; t = t + 1) {{
                    offsets[t * {_RADIX} + d] = run;
                    run = run + hist[t * {_RADIX} + d];
                }}
            }}
        }}
        barrier(&bar);
        // Phase 3: scatter the stripe using the claimed offsets.
        for (int i = lo; i < hi; i = i + 1) {{
            int d = (keys[i] >> shift) & {_RADIX - 1};
            int slot = offsets[tid * {_RADIX} + d];
            offsets[tid * {_RADIX} + d] = slot + 1;
            temp[slot] = keys[i];
        }}
        barrier(&bar);
        // Phase 4: copy back (striped).
        for (int i = lo; i < hi; i = i + 1) keys[i] = temp[i];
        barrier(&bar);
    }}
}}

int main() {{
    lcg_state = 20011009;
    init_barrier(&bar, {nthreads});
    for (int i = 0; i < {nkeys}; i = i + 1) {{
        keys[i] = (int) (lcg_next() * {float(1 << (_DIGIT_BITS * passes))});
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(radix_worker, t);
    radix_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    // Checks: sortedness flag + weighted checksum.
    int sorted = 1;
    int checksum = 0;
    for (int i = 0; i < {nkeys}; i = i + 1) {{
        if (i > 0) {{
            if (keys[i - 1] > keys[i]) sorted = 0;
        }}
        checksum = checksum + keys[i] * (i + 1);
    }}
    print_int(sorted);
    print_int(checksum);
    print_int(keys[0]);
    print_int(keys[{nkeys} - 1]);
    return 0;
}}
"""


def _oracle(nkeys: int, passes: int) -> list[int]:
    stream = lcg_stream(20011009, nkeys)
    limit = float(1 << (_DIGIT_BITS * passes))
    keys = sorted(int(v * limit) for v in stream)
    checksum = sum(k * (i + 1) for i, k in enumerate(keys))
    return [1, checksum, keys[0], keys[-1]]


def make_radix(nkeys: int = 64, passes: int = 2, nthreads: int = 8) -> Workload:
    """Build the RADIX workload (paper-era input: 1M keys, scaled down)."""
    return build(
        name="radix",
        source=radix_source(nkeys, passes, nthreads),
        params={"nkeys": nkeys, "passes": passes, "nthreads": nthreads},
        expected=_oracle(nkeys, passes),
        tolerance=0.0,
        input_set=f"{nkeys} keys, {passes} passes",
    )
