"""Workload plumbing shared by the SPLASH-2-style benchmarks.

Each benchmark module provides a ``make_*`` factory returning a
:class:`Workload`: the compiled Slang program, the parameters, and a numpy
*oracle* — the expected printed output computed independently in Python.
Benchmarks seed their data with the same 31-bit LCG in both worlds
(:func:`lcg_stream`), so functional correctness is checked end-to-end:
Slang compiler -> SPISA -> timing core -> slack engine vs numpy.

The paper's §3.2.3 observation — "the benchmarks we have tested still
execute correctly" under slack — becomes an executable assertion:
``workload.verify(result.output)`` must hold for *every* scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.lang import compile_source

__all__ = ["Workload", "lcg_stream", "LCG_MULT", "LCG_ADD", "LCG_MOD", "SLANG_LCG"]

LCG_MULT = 1103515245
LCG_ADD = 12345
LCG_MOD = 1 << 31


def lcg_stream(seed: int, count: int) -> list[float]:
    """The shared pseudo-random stream: floats in [0, 1)."""
    values = []
    x = seed % LCG_MOD
    for _ in range(count):
        x = (x * LCG_MULT + LCG_ADD) % LCG_MOD
        values.append(x / LCG_MOD)
    return values


#: Slang implementation of the same generator (include in benchmark sources).
SLANG_LCG = """
int lcg_state;
float lcg_next() {
    lcg_state = (lcg_state * 1103515245 + 12345) % (1 << 31);
    return (float) lcg_state / 2147483648.0;
}
"""


@dataclass
class Workload:
    """A compiled benchmark plus its verification oracle."""

    name: str
    program: Program
    params: dict
    expected_output: list
    tolerance: float = 1e-9
    #: Short description for Table 2's "Input Set" column.
    input_set: str = ""
    source: str = field(default="", repr=False)

    def verify(self, output: list) -> bool:
        """Check a simulation's printed output against the oracle."""
        return not self.mismatches(output)

    def mismatches(self, output: list) -> list[str]:
        """Human-readable list of output mismatches (empty = correct)."""
        problems = []
        if len(output) != len(self.expected_output):
            problems.append(
                f"{self.name}: expected {len(self.expected_output)} output values, got {len(output)}"
            )
            return problems
        for i, (got, want) in enumerate(zip(output, self.expected_output)):
            if isinstance(want, float):
                scale = max(abs(want), 1.0)
                if not isinstance(got, float) or abs(got - want) > self.tolerance * scale:
                    problems.append(f"{self.name}[{i}]: expected {want!r}, got {got!r}")
            else:
                if got != want:
                    problems.append(f"{self.name}[{i}]: expected {want!r}, got {got!r}")
        return problems


def build(name: str, source: str, params: dict, expected: list, tolerance: float, input_set: str) -> Workload:
    """Compile *source* and wrap it as a Workload."""
    compiled = compile_source(source, name=name)
    return Workload(
        name=name,
        program=compiled.program,
        params=params,
        expected_output=expected,
        tolerance=tolerance,
        input_set=input_set,
        source=source,
    )
