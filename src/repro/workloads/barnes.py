"""Barnes benchmark (SPLASH-2 Barnes stand-in).

2-D N-body integration with softened gravity.  **Substitution** (recorded in
DESIGN.md §2): the Barnes-Hut octree is replaced by a direct all-pairs force
sweep with the same parallel structure — each thread owns a body stripe,
phases are separated by barriers, and the global potential-energy reduction
is serialised with a lock.  What the slack experiments need is the sharing
pattern (every thread reads all positions, writes its own stripe, contends
on one lock), which direct summation preserves.

Oracle: the identical integrator in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import SLANG_LCG, Workload, build, lcg_stream

__all__ = ["make_barnes", "barnes_source"]

_SOFTENING = 0.05
_DT = 0.01


def barnes_source(nbodies: int, steps: int, nthreads: int) -> str:
    return f"""
// Barnes: {nbodies} bodies, {steps} steps, {nthreads} threads (direct sum).
{SLANG_LCG}
float px[{nbodies}]; float py[{nbodies}];
float vx[{nbodies}]; float vy[{nbodies}];
float ax[{nbodies}]; float ay[{nbodies}];
float mass[{nbodies}];
float potential;
int bar;
int elock;
int tids[{nthreads}];

void body_worker(int tid) {{
    for (int s = 0; s < {steps}; s = s + 1) {{
        // Phase 1: forces on owned bodies (read everything, write own).
        float local_pot = 0.0;
        for (int i = tid; i < {nbodies}; i = i + {nthreads}) {{
            float fx = 0.0;
            float fy = 0.0;
            for (int j = 0; j < {nbodies}; j = j + 1) {{
                if (j == i) continue;
                float dx = px[j] - px[i];
                float dy = py[j] - py[i];
                float r2 = dx * dx + dy * dy + {_SOFTENING};
                float inv = 1.0 / (r2 * sqrt(r2));
                fx = fx + mass[j] * dx * inv;
                fy = fy + mass[j] * dy * inv;
                if (j > i) local_pot = local_pot - mass[i] * mass[j] / sqrt(r2);
            }}
            ax[i] = fx;
            ay[i] = fy;
        }}
        lock(&elock);
        potential = potential + local_pot;
        unlock(&elock);
        barrier(&bar);
        // Phase 2: integrate owned bodies.
        for (int i = tid; i < {nbodies}; i = i + {nthreads}) {{
            vx[i] = vx[i] + ax[i] * {_DT};
            vy[i] = vy[i] + ay[i] * {_DT};
            px[i] = px[i] + vx[i] * {_DT};
            py[i] = py[i] + vy[i] * {_DT};
        }}
        barrier(&bar);
    }}
}}

int main() {{
    lcg_state = 17760704;
    init_barrier(&bar, {nthreads});
    init_lock(&elock);
    potential = 0.0;
    for (int i = 0; i < {nbodies}; i = i + 1) {{
        px[i] = lcg_next() * 2.0 - 1.0;
        py[i] = lcg_next() * 2.0 - 1.0;
        vx[i] = (lcg_next() - 0.5) * 0.1;
        vy[i] = (lcg_next() - 0.5) * 0.1;
        mass[i] = 0.5 + lcg_next();
    }}
    for (int t = 1; t < {nthreads}; t = t + 1) tids[t] = spawn(body_worker, t);
    body_worker(0);
    for (int t = 1; t < {nthreads}; t = t + 1) join(tids[t]);
    float sx = 0.0;
    float sv = 0.0;
    for (int i = 0; i < {nbodies}; i = i + 1) {{
        sx = sx + px[i] + py[i];
        sv = sv + vx[i] * vx[i] + vy[i] * vy[i];
    }}
    print_float(sx);
    print_float(sv);
    print_float(px[0]);
    return 0;
}}
"""


def _oracle(nbodies: int, steps: int) -> list[float]:
    stream = iter(lcg_stream(17760704, 5 * nbodies))
    px = np.zeros(nbodies)
    py = np.zeros(nbodies)
    vx = np.zeros(nbodies)
    vy = np.zeros(nbodies)
    mass = np.zeros(nbodies)
    for i in range(nbodies):
        px[i] = next(stream) * 2.0 - 1.0
        py[i] = next(stream) * 2.0 - 1.0
        vx[i] = (next(stream) - 0.5) * 0.1
        vy[i] = (next(stream) - 0.5) * 0.1
        mass[i] = 0.5 + next(stream)
    for _ in range(steps):
        ax = np.zeros(nbodies)
        ay = np.zeros(nbodies)
        for i in range(nbodies):
            fx = fy = 0.0
            for j in range(nbodies):
                if j == i:
                    continue
                dx = px[j] - px[i]
                dy = py[j] - py[i]
                r2 = dx * dx + dy * dy + _SOFTENING
                inv = 1.0 / (r2 * np.sqrt(r2))
                fx += mass[j] * dx * inv
                fy += mass[j] * dy * inv
            ax[i] = fx
            ay[i] = fy
        vx += ax * _DT
        vy += ay * _DT
        px += vx * _DT
        py += vy * _DT
    sx = float((px + py).sum())
    sv = float((vx * vx + vy * vy).sum())
    return [sx, sv, float(px[0])]


def make_barnes(nbodies: int = 16, steps: int = 2, nthreads: int = 8) -> Workload:
    """Build the Barnes workload (paper input set: 1024 bodies, scaled)."""
    return build(
        name="barnes",
        source=barnes_source(nbodies, steps, nthreads),
        params={"nbodies": nbodies, "steps": steps, "nthreads": nthreads},
        expected=_oracle(nbodies, steps),
        tolerance=1e-6,
        input_set=f"{nbodies} bodies, {steps} steps",
    )
