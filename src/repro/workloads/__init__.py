"""Parallel workloads: SPLASH-2-style Slang benchmarks (fft, lu, barnes,
water) with numpy oracles, plus synthetic trace-driven workloads for engine
tests and ablations."""

from repro.workloads.base import Workload, lcg_stream
from repro.workloads.registry import ALL_BENCHMARKS, BENCHMARKS, SCALES, WORKLOADS, make_workload
from repro.workloads.synthetic import (
    TraceCore,
    pingpong_workload,
    sharing_workload,
    uniform_think_workload,
)

__all__ = [
    "Workload",
    "lcg_stream",
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "SCALES",
    "WORKLOADS",
    "make_workload",
    "TraceCore",
    "pingpong_workload",
    "sharing_workload",
    "uniform_think_workload",
]
