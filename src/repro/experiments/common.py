"""Shared experiment plumbing: a memoising runner over (workload, scheme,
host-cores, seed) and the standard scheme/host grids of the evaluation."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.core.results import SimulationResult
from repro.workloads.base import Workload
from repro.workloads.registry import BENCHMARKS, make_workload

__all__ = [
    "Runner",
    "SCHEMES",
    "HOST_COUNTS",
    "BENCHMARKS",
    "default_scale",
]

#: The paper's scheme set (Figure 8 legend order).
SCHEMES = ("cc", "q10", "l10", "s9", "s9*", "s100", "su")

#: Figure 8's X axis.
HOST_COUNTS = (2, 4, 8)


def default_scale() -> str:
    """Workload scale for experiments; override with REPRO_SCALE=tiny|small|paper."""
    return os.environ.get("REPRO_SCALE", "small")


@dataclass(frozen=True)
class _Key:
    workload: str
    scale: str
    scheme: str
    host_cores: int
    seed: int
    fastforward: bool


class Runner:
    """Memoising simulation runner used by every experiment module."""

    def __init__(self, scale: str | None = None, seed: int = 1, verify: bool = True) -> None:
        self.scale = scale or default_scale()
        self.seed = seed
        self.verify = verify
        self._workloads: dict[str, Workload] = {}
        self._results: dict[_Key, SimulationResult] = {}

    def workload(self, name: str) -> Workload:
        w = self._workloads.get(name)
        if w is None:
            w = make_workload(name, scale=self.scale)
            self._workloads[name] = w
        return w

    def run(
        self,
        workload: str,
        scheme: str,
        host_cores: int,
        *,
        seed: int | None = None,
        fastforward: bool = False,
        target: TargetConfig | None = None,
    ) -> SimulationResult:
        """Run (memoised) and, by default, assert functional correctness."""
        seed = self.seed if seed is None else seed
        key = _Key(workload, self.scale, scheme, host_cores, seed, fastforward)
        cached = self._results.get(key)
        if cached is not None and target is None:
            return cached
        w = self.workload(workload)
        engine = SequentialEngine(
            w.program,
            target=target or TargetConfig(),
            host=HostConfig(num_cores=host_cores),
            sim=SimConfig(scheme=scheme, seed=seed, fastforward=fastforward),
        )
        result = engine.run()
        if self.verify:
            problems = w.mismatches(result.output)
            if problems:
                raise AssertionError(
                    f"workload {workload} mis-executed under {scheme}: " + "; ".join(problems)
                )
        if target is None:
            self._results[key] = result
        return result

    def baseline(self, workload: str) -> SimulationResult:
        """The paper's baseline: cycle-by-cycle on a single host core."""
        return self.run(workload, "cc", 1)
