"""Shared experiment plumbing: a store-backed runner over (workload, scheme,
host-cores, seed) and the standard scheme/host grids of the evaluation.

Every :meth:`Runner.run` resolves through the content-addressed job layer
(:mod:`repro.jobs`, DESIGN.md §12): the request becomes a :class:`JobSpec`,
``execute()`` serves it from ``.repro_cache/results/`` when a sealed record
exists, and either way the experiment code sees a :class:`RecordResult` —
a :class:`~repro.core.results.SimulationResult`-shaped view over the stored
record.  Re-rendering a figure or table on a warm store therefore simulates
nothing, and a ``repro sweep`` warms the exact records the single-experiment
entry points read.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.workloads.base import Workload
from repro.workloads.registry import BENCHMARKS, make_workload

__all__ = [
    "RecordResult",
    "Runner",
    "SCHEMES",
    "HOST_COUNTS",
    "BENCHMARKS",
    "default_scale",
]

#: The paper's scheme set (Figure 8 legend order).
SCHEMES = ("cc", "q10", "l10", "s9", "s9*", "s100", "su")

#: Figure 8's X axis.
HOST_COUNTS = (2, 4, 8)


def default_scale() -> str:
    """Workload scale for experiments; override with REPRO_SCALE=tiny|small|paper."""
    return os.environ.get("REPRO_SCALE", "small")


class RecordResult:
    """A job-store record wearing :class:`SimulationResult`'s interface.

    Exposes the deterministic fields experiments read (metrics, the flat
    stats dump, the stats digest) whether the record came from a live run
    or straight off the store — the two are byte-identical by construction,
    so experiment code cannot tell (and must not care) which happened.
    """

    def __init__(self, record: dict) -> None:
        self.record = record

    # ------------------------------------------------------------- fields
    @property
    def completed(self) -> bool:
        return self.record["completed"]

    @property
    def execution_cycles(self) -> int:
        return self.record["metrics"]["execution_cycles"]

    @property
    def global_time(self) -> int:
        return self.record["metrics"]["global_time"]

    @property
    def instructions(self) -> int:
        return self.record["metrics"]["instructions"]

    @property
    def host_time(self) -> float:
        return self.record["metrics"]["host_time"]

    @property
    def kips(self) -> float:
        return self.record["metrics"]["kips"]

    @property
    def host_utilization(self) -> float:
        return self.record["metrics"]["host_utilization"]

    @property
    def stats(self) -> dict:
        return self.record["stats"]

    @property
    def stats_sha256(self) -> str:
        return self.record["stats_digest"]

    @property
    def output_sha256(self) -> str:
        return self.record["output_sha256"]

    @property
    def cores(self) -> list:
        return self.record["cores"]

    # ------------------------------------------------------------ derived
    def speedup_over(self, baseline) -> float:
        """Simulation speedup = baseline simulation time / this run's time."""
        if self.host_time == 0:
            return float("inf")
        return baseline.host_time / self.host_time

    def error_vs(self, gold) -> float:
        """Relative execution-time error against a gold (cc) run (Table 3)."""
        if gold.execution_cycles == 0:
            return 0.0
        return abs(self.execution_cycles - gold.execution_cycles) / gold.execution_cycles

    def summary(self) -> str:
        from repro.jobs import record_summary

        return record_summary(self.record)


@dataclass(frozen=True)
class _Key:
    workload: str
    scale: str
    scheme: str
    host_cores: int
    seed: int
    fastforward: bool
    core_model: str


class Runner:
    """Store-backed simulation runner used by every experiment module.

    In-process memoisation sits in front of the persistent result store:
    repeated requests inside one experiment pay a dict lookup, repeated
    requests across processes pay a store read, and only genuinely new
    (workload, scheme, hosts, seed) combinations simulate.
    """

    def __init__(self, scale: str | None = None, seed: int = 1, verify: bool = True) -> None:
        self.scale = scale or default_scale()
        self.seed = seed
        #: Kept for API compatibility; the job layer always verifies runs
        #: against the workload's oracle before a record is stored.
        self.verify = verify
        self._workloads: dict[str, Workload] = {}
        self._results: dict[_Key, RecordResult] = {}
        self._points: dict = {}

    def workload(self, name: str) -> Workload:
        w = self._workloads.get(name)
        if w is None:
            w = make_workload(name, scale=self.scale)
            self._workloads[name] = w
        return w

    def run(
        self,
        workload: str,
        scheme: str,
        host_cores: int,
        *,
        seed: int | None = None,
        fastforward: bool = False,
        target: TargetConfig | None = None,
    ) -> RecordResult:
        """Resolve one run through the job layer (store hit or simulate)."""
        seed = self.seed if seed is None else seed
        core_model = "inorder"
        if target is not None:
            if target != TargetConfig(core_model=target.core_model):
                # A bespoke target model (custom caches, widths, ...) is not
                # expressible as a JobSpec yet: run it directly, unmemoised.
                return self._run_direct(workload, scheme, host_cores, seed, fastforward, target)
            core_model = target.core_model
        key = _Key(workload, self.scale, scheme, host_cores, seed, fastforward, core_model)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        from repro.jobs import JobSpec, ResultStore, execute

        outcome = execute(
            JobSpec(
                workload=workload,
                scale=self.scale,
                scheme=scheme,
                seed=seed,
                host_cores=host_cores,
                core_model=core_model,
                fastforward=fastforward,
            ),
            store=ResultStore.default(),
        )
        result = RecordResult(outcome.record)
        self._results[key] = result
        return result

    def _run_direct(
        self,
        workload: str,
        scheme: str,
        host_cores: int,
        seed: int,
        fastforward: bool,
        target: TargetConfig,
    ):
        """Escape hatch for non-job-addressable targets: live engine run."""
        w = self.workload(workload)
        result = SequentialEngine(
            w.program,
            target=target,
            host=HostConfig(num_cores=host_cores),
            sim=SimConfig(scheme=scheme, seed=seed, fastforward=fastforward),
        ).run()
        if self.verify:
            problems = w.mismatches(result.output)
            if problems:
                raise AssertionError(
                    f"workload {workload} mis-executed under {scheme}: " + "; ".join(problems)
                )
        return result

    def point(self, spec) -> dict:
        """A sweep grid point's document (memoised), via the job layer."""
        doc = self._points.get(spec)
        if doc is None:
            from repro.experiments.parallel import run_point

            doc = run_point(spec)
            self._points[spec] = doc
        return doc

    def baseline(self, workload: str) -> RecordResult:
        """The paper's baseline: cycle-by-cycle on a single host core."""
        return self.run(workload, "cc", 1)
