"""Table 2: benchmarks, input sets and baseline KIPS.

Paper: "the KIPS column shows the instruction throughput of the
cycle-by-cycle simulations ... when all threads are executed by one single
host core.  This single-core cycle-by-cycle simulation of our 8-core target
is used as the baseline" (§4.2.1).  Paper values: Barnes 111.3, FFT 120.5,
LU 114.4, Water-Nsquared 127.1 KIPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BENCHMARKS, Runner
from repro.stats.tables import Table

__all__ = ["run_table2", "Table2Row", "PAPER_TABLE2_KIPS"]

#: The paper's Table 2 KIPS values (for EXPERIMENTS.md comparison).
PAPER_TABLE2_KIPS = {"barnes": 111.3, "fft": 120.5, "lu": 114.4, "water": 127.1}

PAPER_INPUT_SETS = {
    "barnes": "1024",
    "fft": "64K points",
    "lu": "256 x 256 matrix",
    "water": "216 molecules",
}


@dataclass
class Table2Row:
    benchmark: str
    input_set: str
    paper_input_set: str
    instructions: int
    kips: float
    paper_kips: float


def run_table2(runner: Runner | None = None) -> list[Table2Row]:
    """Regenerate Table 2 with the baseline (cc, 1 host core) runs."""
    runner = runner or Runner()
    rows = []
    for name in BENCHMARKS:
        result = runner.baseline(name)
        rows.append(
            Table2Row(
                benchmark=name,
                input_set=runner.workload(name).input_set,
                paper_input_set=PAPER_INPUT_SETS[name],
                instructions=result.instructions,
                kips=result.kips,
                paper_kips=PAPER_TABLE2_KIPS[name],
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    table = Table(
        "Table 2: Benchmarks (baseline = cycle-by-cycle on 1 host core)",
        ["Benchmark", "Input Set (ours)", "Input Set (paper)", "Instr", "KIPS", "KIPS (paper)"],
    )
    for r in rows:
        table.add_row(r.benchmark, r.input_set, r.paper_input_set, r.instructions, r.kips, r.paper_kips)
    return table.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(render_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
