"""Experiment harnesses: one module per paper table/figure (see DESIGN.md
per-experiment index) plus the ablation studies A1-A4."""

from repro.experiments.common import BENCHMARKS, HOST_COUNTS, SCHEMES, Runner
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3

__all__ = [
    "BENCHMARKS",
    "HOST_COUNTS",
    "SCHEMES",
    "Runner",
    "render_figure2",
    "run_figure2",
    "render_figure8",
    "run_figure8",
    "render_table2",
    "run_table2",
    "render_table3",
    "run_table3",
]
