"""Figure 2: anatomy of the four synchronization disciplines.

The paper's Figure 2 shows four pedagogical timelines of a 4-core simulation
under cycle-by-cycle, quantum-based, bounded-slack and unbounded-slack
synchronization.  We reproduce it by running four deterministic trace cores
and sampling ``(host_time, global_time, local_times)`` at every manager
step, then rendering a per-thread progress chart over (modeled) host time.

The claims visible in the chart (asserted in the tests):

* cc: all locals within 1 cycle of each other at every sample;
* quantum q: locals within q cycles, sawtooth barrier pattern;
* bounded s: locals within the sliding window [Tg, Tg+s];
* unbounded: windows never block a thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.stats.tables import Table
from repro.workloads.synthetic import TraceCore, sharing_workload

__all__ = ["run_figure2", "SchemeTrace", "render_figure2"]


@dataclass
class SchemeTrace:
    scheme: str
    #: (host_time, global_time, locals) samples at manager steps.
    samples: list[tuple[float, int, list[int]]] = field(default_factory=list)
    final_host_time: float = 0.0

    def max_slack_observed(self) -> int:
        """Largest local-time spread between any two *active* cores
        (inactive cores are sampled as -1)."""
        best = 0
        for _, _, locals_ in self.samples:
            running = [t for t in locals_ if t >= 0]
            if len(running) >= 2:
                best = max(best, max(running) - min(running))
        return best

    def window_respected(self, slack: int) -> bool:
        """Every sampled active local within [global, global + slack]."""
        for _, global_time, locals_ in self.samples:
            for t in locals_:
                if t >= 0 and t > global_time + slack:
                    return False
        return True


def _trace_cores(num_cores: int, ops: int, seed: int) -> list[TraceCore]:
    return sharing_workload(num_cores, ops, seed=seed, think_cycles=3)


def run_figure2(
    schemes: tuple[str, ...] = ("cc", "q3", "s2", "su"),
    *,
    num_cores: int = 4,
    ops: int = 12,
    seed: int = 7,
) -> list[SchemeTrace]:
    """Run the pedagogical 4-core workload under each scheme, sampling."""
    traces = []
    for scheme in schemes:
        engine = SequentialEngine(
            None,
            target=TargetConfig(num_cores=num_cores, core_model="trace"),
            host=HostConfig(num_cores=num_cores),
            sim=SimConfig(scheme=scheme, seed=seed, batch_cycles=1),
            trace_cores=_trace_cores(num_cores, ops, seed),
        )
        trace = SchemeTrace(scheme=scheme)
        engine.probe = lambda host, global_time, locals_, trace=trace: trace.samples.append(
            (host, global_time, list(locals_))
        )
        result = engine.run()
        trace.final_host_time = result.host_time
        traces.append(trace)
    return traces


def render_figure2(traces: list[SchemeTrace], samples_per_scheme: int = 12) -> str:
    """Figure 2 as ASCII: per-thread local times over host time."""
    blocks = []
    for trace in traces:
        n = len(trace.samples[0][2]) if trace.samples else 0
        table = Table(
            f"Figure 2 [{trace.scheme}]: local times over simulation (host) time "
            f"(max observed slack = {trace.max_slack_observed()}, "
            f"finished at host t={trace.final_host_time:.0f})",
            ["host t", "Tg"] + [f"P{i + 1}" for i in range(n)],
        )
        step = max(1, len(trace.samples) // samples_per_scheme)
        for sample in trace.samples[::step][:samples_per_scheme]:
            host, global_time, locals_ = sample
            cells = [t if t >= 0 else "-" for t in locals_]
            table.add_row(f"{host:.0f}", global_time, *cells)
        blocks.append(table.render())
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render_figure2(run_figure2()))


if __name__ == "__main__":  # pragma: no cover
    main()
