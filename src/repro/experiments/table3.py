"""Table 3: relative execution-time errors due to slack.

Paper values (8 host cores):

===============  ======  ======  ======
benchmark        S9      S100    SU
===============  ======  ======  ======
Barnes           0.08%   1.82%   5.94%
FFT              0.01%   0.07%   1.83%
LU               0.03%   0.09%   1.98%
Water-Nsquared   0.01%   0.12%   5.11%
===============  ======  ======  ======

The gold standard is the cycle-by-cycle run ("always accurate", §3.2).
Conservative schemes (q10/l10/s9*) are included as extra columns — the paper
argues they are exact; in this reproduction they carry a small residual
error from synchronization-API emulation ordering (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BENCHMARKS, Runner
from repro.experiments.parallel import build_points, point_key
from repro.stats.tables import Table

__all__ = ["run_table3", "Table3Row", "PAPER_TABLE3"]

#: Paper's Table 3 (fractions, not percent).
PAPER_TABLE3 = {
    "barnes": {"s9": 0.0008, "s100": 0.0182, "su": 0.0594},
    "fft": {"s9": 0.0001, "s100": 0.0007, "su": 0.0183},
    "lu": {"s9": 0.0003, "s100": 0.0009, "su": 0.0198},
    "water": {"s9": 0.0001, "s100": 0.0012, "su": 0.0511},
}

ERROR_SCHEMES = ("s9", "s100", "su")
CONSERVATIVE_SCHEMES = ("q10", "l10", "s9*")


@dataclass
class Table3Row:
    benchmark: str
    errors: dict  # scheme -> relative error (fraction)
    paper: dict
    violations: dict  # scheme -> total violation count


def run_table3(runner: Runner | None = None, host_cores: int = 8) -> list[Table3Row]:
    """Regenerate Table 3 (plus conservative-scheme columns).

    The point list comes from :func:`repro.experiments.parallel.build_points`
    — the identical grid ``repro sweep table3`` runs, so the table reads the
    sweep's stored records (and vice versa).
    """
    runner = runner or Runner()
    points = build_points("table3", runner.scale, runner.seed, host_cores=host_cores)
    docs = {point_key(p): runner.point(p) for p in points}
    rows = []
    for bench in BENCHMARKS:
        gold = docs[f"{bench}/cc/h{host_cores}"]
        errors = {}
        violations = {}
        for scheme in ERROR_SCHEMES + CONSERVATIVE_SCHEMES:
            doc = docs[f"{bench}/{scheme}/h{host_cores}"]
            errors[scheme] = (
                abs(doc["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            )
            # Violation totals come off the run's stats registry dump.
            violations[scheme] = doc["violations"]
        rows.append(
            Table3Row(
                benchmark=bench,
                errors=errors,
                paper=PAPER_TABLE3[bench],
                violations=violations,
            )
        )
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    table = Table(
        "Table 3: relative execution-time errors due to slack (8 host cores)",
        ["Benchmark", "S9", "S9 (paper)", "S100", "S100 (paper)", "SU", "SU (paper)"],
    )
    for r in rows:
        table.add_row(
            r.benchmark,
            f"{r.errors['s9'] * 100:.2f}%",
            f"{r.paper['s9'] * 100:.2f}%",
            f"{r.errors['s100'] * 100:.2f}%",
            f"{r.paper['s100'] * 100:.2f}%",
            f"{r.errors['su'] * 100:.2f}%",
            f"{r.paper['su'] * 100:.2f}%",
        )
    extra = Table(
        "Conservative schemes (paper: exact; residual = sync-emulation ordering)",
        ["Benchmark", "Q10", "L10", "S9*", "violations s9/s100/su"],
    )
    for r in rows:
        extra.add_row(
            r.benchmark,
            f"{r.errors['q10'] * 100:.2f}%",
            f"{r.errors['l10'] * 100:.2f}%",
            f"{r.errors['s9*'] * 100:.2f}%",
            f"{r.violations['s9']}/{r.violations['s100']}/{r.violations['su']}",
        )
    return table.render() + "\n\n" + extra.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(render_table3(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
