"""Process-parallel experiment sweeps with deterministic merging.

The Figure 8 / Table 3 / ablation grids are embarrassingly parallel: every
(workload, scheme, host-core-count) point is an independent simulation.
This module shards those points over a :class:`ProcessPoolExecutor` and
merges the per-point results into one JSON document that is **byte-identical
whatever the job count** (``--jobs 1`` serial in-process vs ``--jobs N``):

* the point list is built up front by the same code on both paths, with the
  per-point seed *derived* (SHA-256) from the base seed and the point's
  coordinates — never from worker identity or scheduling order;
* each simulation is deterministic given (spec, seed), so a point's metric
  dict is the same in any process;
* merging orders points by their config key and the document is rendered
  with ``sort_keys=True``, so encounter order cannot leak into the bytes.

Workers warm the on-disk compile cache (:mod:`repro.lang.compiler`), so N
workers compiling the same benchmark pay one compile between them (first
writer wins; the rest hit the cache).

**Resumable sweeps** (DESIGN.md §8): with ``manifest_dir`` set, every
finished point is written atomically to its own manifest file, and
``resume=True`` reloads finished points instead of re-running them.  Because
each point's metric document is a pure function of its spec, a resumed sweep
renders **byte-identically** to an uninterrupted one — a killed sweep loses
at most the in-flight points.  Crashed workers (a died process takes the
whole ``ProcessPoolExecutor`` down) are retried with a fresh pool and
exponential backoff, bounded by ``max_retries`` per point; genuine point
errors (a failed simulation) propagate immediately, they are never retried.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path

from repro._util import atomic_write_text
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.experiments.common import BENCHMARKS, HOST_COUNTS, SCHEMES, default_scale

__all__ = [
    "PointSpec",
    "SWEEP_EXPERIMENTS",
    "SweepError",
    "build_points",
    "derive_seed",
    "manifest_path",
    "point_key",
    "run_point",
    "run_sweep",
    "sweep_to_json",
]


class SweepError(RuntimeError):
    """A sweep could not finish (worker crashes exceeded the retry budget)."""


#: (workload, scale) -> trace file path for the current sweep.  Set in the
#: parent before any point runs and shipped to workers via the executor
#: initializer, so every process replays the same capture.  Empty when the
#: sweep runs without trace reuse — points then execute directly.
_TRACE_MAP: dict[tuple[str, str], str] = {}


def _init_worker_traces(trace_map: dict[tuple[str, str], str]) -> None:
    """ProcessPoolExecutor initializer: install the parent's trace map."""
    _TRACE_MAP.clear()
    _TRACE_MAP.update(trace_map)


def _capture_sweep_traces(specs: list["PointSpec"], base_seed: int) -> dict:
    """One functional capture per distinct (workload, scale) in *specs*.

    Captures land in the content-keyed ``.repro_cache/traces/`` store
    (:mod:`repro.trace.store`), keyed on (program digest, workload config,
    seed) — so a second sweep over the same workloads performs **zero**
    captures, and every scheme/host/ff point replays the same stream.  The
    stream is scheme- and sim-seed-invariant, which is why per-point derived
    seeds still replay against one capture; the capture itself runs under
    ``su`` (the cheapest scheme) purely for speed.
    """
    from repro.trace import format as tformat
    from repro.trace.store import trace_key, trace_store_path
    from repro.workloads.registry import make_workload

    trace_map: dict[tuple[str, str], str] = {}
    combos = sorted({(s.workload, s.scale) for s in specs if s.core_model == "inorder"})
    for wl_name, scale in combos:
        workload = make_workload(wl_name, scale=scale)
        digest = tformat.program_digest(workload.program)
        source = {"workload": wl_name, "scale": scale}
        path = trace_store_path(trace_key(digest, source, base_seed))
        if path is None:
            continue  # on-disk caching disabled: points run directly
        if path.exists():
            try:
                if tformat.read_trace(str(path)).header.get("program_digest") == digest:
                    trace_map[(wl_name, scale)] = str(path)
                    continue
            except tformat.TraceError:
                pass  # corrupt or stale entry: recapture below
        result = SequentialEngine(
            workload.program,
            sim=SimConfig(
                scheme="su", seed=base_seed, trace_mode="capture",
                trace_path=str(path),
                trace_source=json.dumps(source, sort_keys=True),
            ),
        ).run()
        if not result.completed:
            raise SweepError(f"trace capture for {wl_name}/{scale} did not complete")
        trace_map[(wl_name, scale)] = str(path)
    return trace_map

#: Slack bounds of the ablation (A1) sweep grid.
ABLATION_SLACKS = (1, 4, 9, 25, 100, 400)

SWEEP_EXPERIMENTS = ("figure8", "table3", "ablations")


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point (picklable; sent to workers)."""

    workload: str
    scheme: str
    host_cores: int
    scale: str
    seed: int
    fastforward: bool = False
    core_model: str = "inorder"


def derive_seed(base_seed: int, workload: str, scheme: str, host_cores: int) -> int:
    """Per-point seed, stable across runs and independent of worker identity."""
    digest = hashlib.sha256(
        f"{base_seed}:{workload}:{scheme}:{host_cores}".encode()
    ).digest()
    return 1 + int.from_bytes(digest[:4], "little") % (2**31 - 1)


def point_key(spec: PointSpec) -> str:
    """The merge/order key: one stable string per grid coordinate."""
    key = f"{spec.workload}/{spec.scheme}/h{spec.host_cores}"
    if spec.fastforward:
        key += "/ff"
    return key


def _output_digest(output: list) -> str:
    """Exact fingerprint of the workload output stream (floats via hex)."""
    h = hashlib.sha256()
    for v in output:
        h.update(v.hex().encode() if isinstance(v, float) else repr(v).encode())
        h.update(b";")
    return h.hexdigest()


def run_point(spec: PointSpec) -> dict:
    """Simulate one point and return its JSON-safe metrics.

    Module-level (picklable) so ProcessPoolExecutor can ship it to workers;
    also the serial path, so jobs=1 and jobs=N run the identical code.
    """
    _maybe_crash(spec)
    from repro.workloads.registry import make_workload

    workload = make_workload(spec.workload, scale=spec.scale)
    # Trace reuse: replay the sweep's shared capture instead of re-executing
    # the functional cores.  Replay is observationally identical to direct
    # execution (same stats dump, same output), so the point document — and
    # therefore the sweep JSON — is byte-identical either way.
    trace_path = (
        _TRACE_MAP.get((spec.workload, spec.scale))
        if spec.core_model == "inorder"
        else None
    )
    engine = SequentialEngine(
        workload.program,
        target=TargetConfig(core_model=spec.core_model),
        host=HostConfig(num_cores=spec.host_cores),
        sim=SimConfig(
            scheme=spec.scheme, seed=spec.seed, fastforward=spec.fastforward,
            trace_mode="replay" if trace_path is not None else "off",
            trace_path=trace_path,
        ),
    )
    result = engine.run()
    problems = workload.mismatches(result.output)
    if problems:
        raise AssertionError(
            f"{spec.workload} mis-executed under {spec.scheme}: " + "; ".join(problems)
        )
    # Metrics come off the run's registry dump — one deterministic document
    # per point, the same bytes whatever worker produced it.
    stats = result.stats
    return {
        "spec": asdict(spec),
        "completed": result.completed,
        "execution_cycles": stats["target.execution_cycles"],
        "global_time": stats["target.global_time"],
        "instructions": stats["target.instructions"],
        "host_time": stats["host.makespan"],
        "kips": result.kips,
        "violations": (
            stats["violations.simulation_state"]
            + stats["violations.system_state"]
            + stats["violations.workload_state"]
        ),
        "workload_violations": stats["violations.workload_state"],
        "output_sha256": _output_digest(result.output),
        "stats": stats,
        "stats_digest": result.stats_sha256,
    }


def _maybe_crash(spec: PointSpec) -> None:
    """Worker-crash fault injection (the sweep-level sibling of
    :mod:`repro.faults`): if ``REPRO_SWEEP_CRASH_POINT`` names this point's
    key and the ``REPRO_SWEEP_CRASH_ONCE`` marker file does not exist yet,
    create the marker and die without cleanup — exactly what a segfaulting
    or OOM-killed worker looks like to the parent pool.  Used by the
    kill-and-resume tests and the CI resilience job; inert in normal runs.
    """
    target = os.environ.get("REPRO_SWEEP_CRASH_POINT")
    if not target or target != point_key(spec):
        return
    marker = os.environ.get("REPRO_SWEEP_CRASH_ONCE")
    if marker:
        if os.path.exists(marker):
            return  # already crashed once; behave this time
        open(marker, "w").close()
    os._exit(13)


# -------------------------------------------------------------- manifests
def manifest_path(manifest_dir: str | Path, spec: PointSpec) -> Path:
    """Where *spec*'s finished-point manifest lives under *manifest_dir*."""
    return Path(manifest_dir) / (point_key(spec).replace("/", "_") + ".json")


def _load_manifest(path: Path, spec: PointSpec) -> dict | None:
    """A finished point's document, or None if absent/corrupt/stale.

    A manifest only counts when its embedded spec matches the current grid
    point exactly — a sweep resumed after changing seeds or scale silently
    re-runs everything rather than mixing configurations.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("spec") != asdict(spec):
        return None
    return doc


def _store_manifest(manifest_dir: str | Path, spec: PointSpec, result: dict) -> None:
    # Atomic (temp + rename): a sweep killed mid-write leaves either the old
    # manifest or none — never a torn file that a resume would half-trust.
    atomic_write_text(
        str(manifest_path(manifest_dir, spec)),
        json.dumps(result, indent=2, sort_keys=True) + "\n",
    )


# ----------------------------------------------------------------- grids
def _figure8_points(scale: str, base_seed: int) -> list[PointSpec]:
    points = []
    for bench in BENCHMARKS:
        points.append(
            PointSpec(bench, "cc", 1, scale, derive_seed(base_seed, bench, "cc", 1))
        )
        for scheme in SCHEMES:
            for hosts in HOST_COUNTS:
                points.append(
                    PointSpec(
                        bench, scheme, hosts, scale,
                        derive_seed(base_seed, bench, scheme, hosts),
                    )
                )
    return points


def _table3_points(scale: str, base_seed: int) -> list[PointSpec]:
    points = []
    for bench in BENCHMARKS:
        for scheme in ("cc", "s9", "s100", "su", "q10", "l10", "s9*"):
            points.append(
                PointSpec(
                    bench, scheme, 8, scale, derive_seed(base_seed, bench, scheme, 8)
                )
            )
    return points


def _ablation_points(scale: str, base_seed: int, workload: str = "fft") -> list[PointSpec]:
    schemes = ["cc"] + [f"s{n}" for n in ABLATION_SLACKS] + ["su"]
    points = [
        PointSpec(workload, "cc", 1, scale, derive_seed(base_seed, workload, "cc", 1))
    ]
    for scheme in schemes:
        points.append(
            PointSpec(
                workload, scheme, 8, scale, derive_seed(base_seed, workload, scheme, 8)
            )
        )
    return points


def build_points(experiment: str, scale: str, base_seed: int, **kwargs) -> list[PointSpec]:
    """The full point list for *experiment* (identical on every path)."""
    if experiment == "figure8":
        return _figure8_points(scale, base_seed)
    if experiment == "table3":
        return _table3_points(scale, base_seed)
    if experiment == "ablations":
        return _ablation_points(scale, base_seed, **kwargs)
    raise ValueError(
        f"unknown sweep experiment {experiment!r} (expected one of {SWEEP_EXPERIMENTS})"
    )


# ----------------------------------------------------------------- derived
def _derive_metrics(experiment: str, merged: dict) -> dict:
    """Cross-point metrics (speedups, errors) from the merged point dict."""
    derived: dict = {}
    if experiment == "figure8":
        speedups: dict = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc" and spec["host_cores"] == 1:
                continue
            base = merged[f"{spec['workload']}/cc/h1"]
            speedups[key] = base["host_time"] / point["host_time"]
        derived["speedup_over_cc1"] = speedups
    elif experiment == "table3":
        errors: dict = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc":
                continue
            gold = merged[f"{spec['workload']}/cc/h{spec['host_cores']}"]
            errors[key] = (
                abs(point["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            )
        derived["error_vs_cc"] = errors
    elif experiment == "ablations":
        speedups = {}
        errors = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc":
                continue
            base = merged[f"{spec['workload']}/cc/h1"]
            gold = merged[f"{spec['workload']}/cc/h8"]
            speedups[key] = base["host_time"] / point["host_time"]
            errors[key] = (
                abs(point["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            )
        derived["speedup_over_cc1"] = speedups
        derived["error_vs_cc"] = errors
    return derived


# --------------------------------------------------------------- top level
def _run_points_parallel(
    specs: list[PointSpec],
    todo: list[int],
    results: dict[int, dict],
    *,
    jobs: int,
    manifest_dir: str | Path | None,
    max_retries: int,
    point_timeout: float | None,
    trace_map: dict | None = None,
) -> None:
    """Futures-based scheduler with crash recovery.

    One worker dying (segfault, OOM kill) poisons the whole
    ``ProcessPoolExecutor`` — every outstanding future raises
    :class:`BrokenProcessPool`.  Finished points are already harvested (and
    manifested), so recovery is: discard the pool, wait out an exponential
    backoff, and resubmit only the unfinished points, at most *max_retries*
    extra attempts per point.  A stall — *point_timeout* seconds with no
    completion at all — is treated the same way.  Exceptions **raised by a
    point** (simulation error, output mismatch) are real failures and
    propagate on first occurrence.
    """
    attempts = dict.fromkeys(todo, 0)
    backoff = 0.5
    while todo:
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker_traces,
            initargs=(trace_map or {},),
        )
        futures = {executor.submit(run_point, specs[i]): i for i in todo}
        crashed = False
        try:
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, timeout=point_timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    crashed = True  # nothing finished for a whole window
                    break
                for future in done:
                    index = futures[future]
                    result = future.result()  # point errors propagate here
                    results[index] = result
                    if manifest_dir is not None:
                        _store_manifest(manifest_dir, specs[index], result)
        except BrokenProcessPool:
            crashed = True
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        todo = [i for i in todo if i not in results]
        if not todo:
            return
        if not crashed:  # defensive: wait() drained without finishing
            crashed = True
        for index in todo:
            attempts[index] += 1
            if attempts[index] > max_retries:
                raise SweepError(
                    f"point {point_key(specs[index])} lost its worker "
                    f"{attempts[index]} times (max_retries={max_retries})"
                )
        time.sleep(backoff)
        backoff = min(backoff * 2, 8.0)


def run_sweep(
    experiment: str,
    *,
    jobs: int = 1,
    scale: str | None = None,
    base_seed: int = 1,
    manifest_dir: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 2,
    point_timeout: float | None = None,
    trace: bool = False,
    **kwargs,
) -> dict:
    """Run a full experiment sweep, sharded over *jobs* processes.

    ``jobs <= 1`` runs every point serially in-process; either way the
    returned document is identical (see the module docstring for why).

    With *manifest_dir*, each finished point is persisted atomically;
    ``resume=True`` then skips points whose manifest matches the grid, so a
    killed sweep restarts from where it died — and still renders the same
    bytes as an uninterrupted run.
    """
    if resume and manifest_dir is None:
        raise ValueError("resume=True requires manifest_dir")
    scale = scale or default_scale()
    specs = build_points(experiment, scale, base_seed, **kwargs)
    if manifest_dir is not None:
        Path(manifest_dir).mkdir(parents=True, exist_ok=True)

    # Trace reuse: one functional capture per (workload, scale) up front in
    # the parent — trivially exactly-once whatever the job count — then every
    # point (across all schemes, host counts and ff variants) replays it.
    trace_map = _capture_sweep_traces(specs, base_seed) if trace else {}
    _init_worker_traces(trace_map)  # serial path + forked workers

    results: dict[int, dict] = {}
    todo: list[int] = []
    for i, spec in enumerate(specs):
        if resume:
            assert manifest_dir is not None
            doc = _load_manifest(manifest_path(manifest_dir, spec), spec)
            if doc is not None:
                results[i] = doc
                continue
        todo.append(i)

    if jobs <= 1:
        for i in todo:
            results[i] = run_point(specs[i])
            if manifest_dir is not None:
                _store_manifest(manifest_dir, specs[i], results[i])
    else:
        _run_points_parallel(
            specs, todo, results,
            jobs=jobs, manifest_dir=manifest_dir,
            max_retries=max_retries, point_timeout=point_timeout,
            trace_map=trace_map,
        )

    merged = dict(
        sorted(
            ((point_key(spec), results[i]) for i, spec in enumerate(specs)),
            key=lambda item: item[0],
        )
    )
    return {
        "experiment": experiment,
        "scale": scale,
        "base_seed": base_seed,
        "points": merged,
        "derived": _derive_metrics(experiment, merged),
    }


def sweep_to_json(payload: dict) -> str:
    """Canonical byte-stable rendering of a sweep document."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
