"""Process-parallel experiment sweeps with deterministic merging.

The Figure 8 / Table 3 / ablation grids are embarrassingly parallel: every
(workload, scheme, host-core-count) point is an independent simulation.
This module shards those points over a :class:`ProcessPoolExecutor` and
merges the per-point results into one JSON document that is **byte-identical
whatever the job count** (``--jobs 1`` serial in-process vs ``--jobs N``):

* the point list is built up front by the same code on both paths, with the
  per-point seed *derived* (SHA-256) from the base seed and the point's
  coordinates — never from worker identity or scheduling order;
* each simulation is deterministic given (spec, seed), so a point's metric
  dict is the same in any process;
* merging orders points by their config key and the document is rendered
  with ``sort_keys=True``, so encounter order cannot leak into the bytes.

Every point resolves through the content-addressed job layer
(:mod:`repro.jobs`, DESIGN.md §12): ``run_point`` wraps its
:class:`PointSpec` into a :class:`JobSpec` and calls ``execute()``, so a
point whose record already sits in ``.repro_cache/results/`` is a store
lookup, not a simulation — a repeated sweep is served entirely from the
store and still renders byte-identical JSON.  Workers also share the
on-disk compile cache, so N workers compiling the same benchmark pay one
compile between them.

**Resumable sweeps** (DESIGN.md §8): with ``manifest_dir`` set, every
finished point is written atomically to its own manifest file, and
``resume=True`` reloads finished points instead of re-running them.  The
manifest is a *view of the store record* (the same document ``execute()``'s
record reduces to), so a resumed sweep renders **byte-identically** to an
uninterrupted one — a killed sweep loses at most the in-flight points.
Crashed workers (a died process takes the whole ``ProcessPoolExecutor``
down) are retried with a fresh pool and exponential backoff, bounded by
``max_retries`` per point; genuine point errors (a failed simulation)
propagate immediately, they are never retried.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path

from repro._util import Backoff, atomic_write_text, sha256_hex
from repro.core.config import SimConfig
from repro.core.engine import SequentialEngine
from repro.experiments.common import BENCHMARKS, HOST_COUNTS, SCHEMES, default_scale

__all__ = [
    "ABLATION_SLACKS",
    "PointSpec",
    "SWEEP_EXPERIMENTS",
    "SweepError",
    "TABLE3_SCHEMES",
    "build_points",
    "derive_seed",
    "manifest_path",
    "point_document",
    "point_job",
    "point_key",
    "run_point",
    "run_sweep",
    "sweep_to_json",
]


class SweepError(RuntimeError):
    """A sweep could not finish (worker crashes exceeded the retry budget)."""


#: (workload, scale) -> trace file path for the current sweep.  Set in the
#: parent before any point runs and shipped to workers via the executor
#: initializer, so every process replays the same capture.  Empty when the
#: sweep runs without trace reuse — points then fall back to the job
#: layer's own store-driven replay discovery.
_TRACE_MAP: dict[tuple[str, str], str] = {}


def _init_worker_traces(trace_map: dict[tuple[str, str], str]) -> None:
    """ProcessPoolExecutor initializer: install the parent's trace map."""
    _TRACE_MAP.clear()
    _TRACE_MAP.update(trace_map)


def _capture_sweep_traces(specs: list["PointSpec"], base_seed: int) -> dict:
    """One functional capture per distinct (workload, scale) in *specs*.

    Captures land in the content-keyed ``.repro_cache/traces/`` store
    (:mod:`repro.trace.store`), keyed on (program digest, workload config,
    seed) — so a second sweep over the same workloads performs **zero**
    captures, and every scheme/host/ff point replays the same stream.  The
    stream is scheme- and sim-seed-invariant, which is why per-point derived
    seeds still replay against one capture; the capture itself runs under
    ``su`` (the cheapest scheme) purely for speed.
    """
    from repro.trace import format as tformat
    from repro.trace.store import trace_key, trace_store_path
    from repro.workloads.registry import make_workload

    trace_map: dict[tuple[str, str], str] = {}
    combos = sorted({(s.workload, s.scale) for s in specs if s.core_model == "inorder"})
    for wl_name, scale in combos:
        workload = make_workload(wl_name, scale=scale)
        digest = tformat.program_digest(workload.program)
        source = {"workload": wl_name, "scale": scale}
        path = trace_store_path(trace_key(digest, source, base_seed))
        if path is None:
            continue  # on-disk caching disabled: points run directly
        if path.exists():
            try:
                if tformat.read_trace(str(path)).header.get("program_digest") == digest:
                    trace_map[(wl_name, scale)] = str(path)
                    continue
            except tformat.TraceError:
                pass  # corrupt or stale entry: recapture below
        result = SequentialEngine(
            workload.program,
            sim=SimConfig(
                scheme="su", seed=base_seed, trace_mode="capture",
                trace_path=str(path),
                trace_source=json.dumps(source, sort_keys=True),
            ),
        ).run()
        if not result.completed:
            raise SweepError(f"trace capture for {wl_name}/{scale} did not complete")
        trace_map[(wl_name, scale)] = str(path)
    return trace_map

#: Slack bounds of the ablation (A1) sweep grid — single-sourced here;
#: :mod:`repro.experiments.ablations` builds the same grid through
#: :func:`build_points`.
ABLATION_SLACKS = (1, 4, 9, 25, 100, 400)

#: Table 3's scheme columns (error + conservative), in grid order.
TABLE3_SCHEMES = ("cc", "s9", "s100", "su", "q10", "l10", "s9*")

SWEEP_EXPERIMENTS = ("figure8", "table3", "ablations")


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point (picklable; sent to workers).

    A thin grid-coordinate view over :class:`repro.jobs.JobSpec`:
    :func:`point_job` is the (total) mapping onto the canonical job
    identity, and every field here is digest-relevant there.
    """

    workload: str
    scheme: str
    host_cores: int
    scale: str
    seed: int
    fastforward: bool = False
    core_model: str = "inorder"


def derive_seed(base_seed: int, workload: str, scheme: str, host_cores: int) -> int:
    """Per-point seed, stable across runs and independent of worker identity."""
    digest = sha256_hex(f"{base_seed}:{workload}:{scheme}:{host_cores}")
    return 1 + int.from_bytes(bytes.fromhex(digest[:8]), "little") % (2**31 - 1)


def point_key(spec: PointSpec) -> str:
    """The merge/order key: one stable string per grid coordinate."""
    key = f"{spec.workload}/{spec.scheme}/h{spec.host_cores}"
    if spec.fastforward:
        key += "/ff"
    return key


def point_job(spec: PointSpec):
    """The canonical job identity of one grid point."""
    from repro.jobs import JobSpec

    return JobSpec(
        workload=spec.workload,
        scale=spec.scale,
        scheme=spec.scheme,
        seed=spec.seed,
        host_cores=spec.host_cores,
        core_model=spec.core_model,
        fastforward=spec.fastforward,
    )


def point_document(spec: PointSpec, record: dict) -> dict:
    """A sweep point's JSON document, reduced from a job-store record.

    Pure function of (spec, record) with only deterministic record fields
    — provenance (wall times, trace paths) never leaks in, which is what
    keeps a store-served sweep byte-identical to a cold one.
    """
    metrics = record["metrics"]
    return {
        "spec": asdict(spec),
        "completed": record["completed"],
        "execution_cycles": metrics["execution_cycles"],
        "global_time": metrics["global_time"],
        "instructions": metrics["instructions"],
        "host_time": metrics["host_time"],
        "kips": metrics["kips"],
        "violations": metrics["violations"],
        "workload_violations": metrics["workload_violations"],
        "output_sha256": record["output_sha256"],
        "stats": record["stats"],
        "stats_digest": record["stats_digest"],
    }


def _run_point_ex(spec: PointSpec) -> tuple[dict, bool]:
    """Resolve one point through the job layer: (document, store_hit).

    Module-level (picklable) so ProcessPoolExecutor can ship it to workers;
    also the serial path, so jobs=1 and jobs=N run the identical code.
    """
    _maybe_crash(spec)
    from repro.jobs import ResultStore, execute

    trace_path = (
        _TRACE_MAP.get((spec.workload, spec.scale))
        if spec.core_model == "inorder"
        else None
    )
    store = ResultStore.default()
    if trace_path is not None:
        from repro.core.engine import EngineError
        from repro.trace.format import TraceError

        try:
            outcome = execute(point_job(spec), store=store, trace=trace_path)
        except (EngineError, TraceError):
            # The sweep's capture went stale under this point's config:
            # degrade to a direct run rather than failing the point.
            outcome = execute(point_job(spec), store=store, trace=None)
    else:
        outcome = execute(point_job(spec), store=store, trace="auto")
    return point_document(spec, outcome.record), outcome.hit


def run_point(spec: PointSpec) -> dict:
    """Simulate (or serve from the result store) one point's document."""
    return _run_point_ex(spec)[0]


def _maybe_crash(spec: PointSpec) -> None:
    """Worker-crash fault injection (the sweep-level sibling of
    :mod:`repro.faults`): if ``REPRO_SWEEP_CRASH_POINT`` names this point's
    key and the ``REPRO_SWEEP_CRASH_ONCE`` marker file does not exist yet,
    create the marker and die without cleanup — exactly what a segfaulting
    or OOM-killed worker looks like to the parent pool.  Used by the
    kill-and-resume tests and the CI resilience job; inert in normal runs.
    """
    target = os.environ.get("REPRO_SWEEP_CRASH_POINT")
    if not target or target != point_key(spec):
        return
    marker = os.environ.get("REPRO_SWEEP_CRASH_ONCE")
    if marker:
        if os.path.exists(marker):
            return  # already crashed once; behave this time
        open(marker, "w").close()
    os._exit(13)


# -------------------------------------------------------------- manifests
def manifest_path(manifest_dir: str | Path, spec: PointSpec) -> Path:
    """Where *spec*'s finished-point manifest lives under *manifest_dir*."""
    return Path(manifest_dir) / (point_key(spec).replace("/", "_") + ".json")


def _load_manifest(path: Path, spec: PointSpec) -> dict | None:
    """A finished point's document, or None if absent/corrupt/stale.

    A manifest only counts when its embedded spec matches the current grid
    point exactly — a sweep resumed after changing seeds or scale silently
    re-runs everything rather than mixing configurations.  (A re-run is
    still cheap: the point's record usually survives in the result store.)
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("spec") != asdict(spec):
        return None
    return doc


def _store_manifest(manifest_dir: str | Path, spec: PointSpec, result: dict) -> None:
    # Atomic (temp + rename): a sweep killed mid-write leaves either the old
    # manifest or none — never a torn file that a resume would half-trust.
    atomic_write_text(
        str(manifest_path(manifest_dir, spec)),
        json.dumps(result, indent=2, sort_keys=True) + "\n",
    )


# ----------------------------------------------------------------- grids
def _figure8_points(
    scale: str,
    base_seed: int,
    *,
    benchmarks: tuple[str, ...] = BENCHMARKS,
    schemes: tuple[str, ...] = SCHEMES,
    host_counts: tuple[int, ...] = HOST_COUNTS,
) -> list[PointSpec]:
    points = []
    for bench in benchmarks:
        points.append(
            PointSpec(bench, "cc", 1, scale, derive_seed(base_seed, bench, "cc", 1))
        )
        for scheme in schemes:
            for hosts in host_counts:
                points.append(
                    PointSpec(
                        bench, scheme, hosts, scale,
                        derive_seed(base_seed, bench, scheme, hosts),
                    )
                )
    return points


def _table3_points(
    scale: str,
    base_seed: int,
    *,
    benchmarks: tuple[str, ...] = BENCHMARKS,
    schemes: tuple[str, ...] = TABLE3_SCHEMES,
    host_cores: int = 8,
) -> list[PointSpec]:
    points = []
    for bench in benchmarks:
        for scheme in schemes:
            points.append(
                PointSpec(
                    bench, scheme, host_cores, scale,
                    derive_seed(base_seed, bench, scheme, host_cores),
                )
            )
    return points


def _ablation_points(
    scale: str,
    base_seed: int,
    workload: str = "fft",
    *,
    slacks: tuple[int, ...] = ABLATION_SLACKS,
    host_cores: int = 8,
) -> list[PointSpec]:
    schemes = ["cc"] + [f"s{n}" for n in slacks] + ["su"]
    points = [
        PointSpec(workload, "cc", 1, scale, derive_seed(base_seed, workload, "cc", 1))
    ]
    for scheme in schemes:
        points.append(
            PointSpec(
                workload, scheme, host_cores, scale,
                derive_seed(base_seed, workload, scheme, host_cores),
            )
        )
    return points


def build_points(experiment: str, scale: str, base_seed: int, **kwargs) -> list[PointSpec]:
    """The full point list for *experiment* (identical on every path).

    The single grid authority: the sweep runner AND the single-experiment
    modules (figure8/table3/ablations) build their point lists here, so
    the two paths can never drift.  ``kwargs`` subset the grid (e.g.
    ``host_counts=(2, 8)`` for a cheaper Figure 8, ``workload=``/
    ``slacks=`` for the ablation sweep).
    """
    if experiment == "figure8":
        return _figure8_points(scale, base_seed, **kwargs)
    if experiment == "table3":
        return _table3_points(scale, base_seed, **kwargs)
    if experiment == "ablations":
        return _ablation_points(scale, base_seed, **kwargs)
    raise ValueError(
        f"unknown sweep experiment {experiment!r} (expected one of {SWEEP_EXPERIMENTS})"
    )


# ----------------------------------------------------------------- derived
def _derive_metrics(experiment: str, merged: dict) -> dict:
    """Cross-point metrics (speedups, errors) from the merged point dict."""
    derived: dict = {}
    if experiment == "figure8":
        speedups: dict = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc" and spec["host_cores"] == 1:
                continue
            base = merged[f"{spec['workload']}/cc/h1"]
            speedups[key] = base["host_time"] / point["host_time"]
        derived["speedup_over_cc1"] = speedups
    elif experiment == "table3":
        errors: dict = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc":
                continue
            gold = merged[f"{spec['workload']}/cc/h{spec['host_cores']}"]
            errors[key] = (
                abs(point["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            )
        derived["error_vs_cc"] = errors
    elif experiment == "ablations":
        speedups = {}
        errors = {}
        for key, point in merged.items():
            spec = point["spec"]
            if spec["scheme"] == "cc":
                continue
            base = merged[f"{spec['workload']}/cc/h1"]
            gold = merged[f"{spec['workload']}/cc/h8"]
            speedups[key] = base["host_time"] / point["host_time"]
            errors[key] = (
                abs(point["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            )
        derived["speedup_over_cc1"] = speedups
        derived["error_vs_cc"] = errors
    return derived


# --------------------------------------------------------------- top level
def _run_points_parallel(
    specs: list[PointSpec],
    todo: list[int],
    results: dict[int, dict],
    hits: dict[int, bool],
    *,
    jobs: int,
    manifest_dir: str | Path | None,
    max_retries: int,
    point_timeout: float | None,
    trace_map: dict | None = None,
) -> None:
    """Futures-based scheduler with crash recovery.

    One worker dying (segfault, OOM kill) poisons the whole
    ``ProcessPoolExecutor`` — every outstanding future raises
    :class:`BrokenProcessPool`.  Finished points are already harvested (and
    manifested), so recovery is: discard the pool, wait out an exponential
    backoff, and resubmit only the unfinished points, at most *max_retries*
    extra attempts per point.  A stall — *point_timeout* seconds with no
    completion at all — is treated the same way.  Exceptions **raised by a
    point** (simulation error, output mismatch) are real failures and
    propagate on first occurrence.
    """
    attempts = dict.fromkeys(todo, 0)
    backoff = Backoff(base=0.5, cap=8.0)
    while todo:
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker_traces,
            initargs=(trace_map or {},),
        )
        futures = {executor.submit(_run_point_ex, specs[i]): i for i in todo}
        crashed = False
        try:
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, timeout=point_timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    crashed = True  # nothing finished for a whole window
                    break
                for future in done:
                    index = futures[future]
                    doc, hit = future.result()  # point errors propagate here
                    results[index] = doc
                    hits[index] = hit
                    if manifest_dir is not None:
                        _store_manifest(manifest_dir, specs[index], doc)
        except BrokenProcessPool:
            crashed = True
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        todo = [i for i in todo if i not in results]
        if not todo:
            return
        if not crashed:  # defensive: wait() drained without finishing
            crashed = True
        for index in todo:
            attempts[index] += 1
            if attempts[index] > max_retries:
                raise SweepError(
                    f"point {point_key(specs[index])} lost its worker "
                    f"{attempts[index]} times (max_retries={max_retries})"
                )
        backoff.sleep()


def run_sweep(
    experiment: str,
    *,
    jobs: int = 1,
    scale: str | None = None,
    base_seed: int = 1,
    manifest_dir: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 2,
    point_timeout: float | None = None,
    trace: bool = False,
    telemetry: dict | None = None,
    **kwargs,
) -> dict:
    """Run a full experiment sweep, sharded over *jobs* processes.

    ``jobs <= 1`` runs every point serially in-process; either way the
    returned document is identical (see the module docstring for why).

    With *manifest_dir*, each finished point is persisted atomically;
    ``resume=True`` then skips points whose manifest matches the grid, so a
    killed sweep restarts from where it died — and still renders the same
    bytes as an uninterrupted run.

    *telemetry*, when given, receives out-of-band execution counters —
    ``store_hits`` / ``store_misses`` / ``manifest_resumed`` — kept outside
    the returned document on purpose: a warm sweep must render the same
    bytes as a cold one, so how each point was served cannot live in the
    payload.
    """
    if resume and manifest_dir is None:
        raise ValueError("resume=True requires manifest_dir")
    scale = scale or default_scale()
    specs = build_points(experiment, scale, base_seed, **kwargs)
    if manifest_dir is not None:
        Path(manifest_dir).mkdir(parents=True, exist_ok=True)

    # Trace reuse: one functional capture per (workload, scale) up front in
    # the parent — trivially exactly-once whatever the job count — then every
    # point (across all schemes, host counts and ff variants) replays it.
    trace_map = _capture_sweep_traces(specs, base_seed) if trace else {}
    _init_worker_traces(trace_map)  # serial path + forked workers

    results: dict[int, dict] = {}
    hits: dict[int, bool] = {}
    resumed_count = 0
    todo: list[int] = []
    for i, spec in enumerate(specs):
        if resume:
            assert manifest_dir is not None
            doc = _load_manifest(manifest_path(manifest_dir, spec), spec)
            if doc is not None:
                results[i] = doc
                resumed_count += 1
                continue
        todo.append(i)

    if jobs <= 1:
        for i in todo:
            results[i], hits[i] = _run_point_ex(specs[i])
            if manifest_dir is not None:
                _store_manifest(manifest_dir, specs[i], results[i])
    else:
        _run_points_parallel(
            specs, todo, results, hits,
            jobs=jobs, manifest_dir=manifest_dir,
            max_retries=max_retries, point_timeout=point_timeout,
            trace_map=trace_map,
        )

    if telemetry is not None:
        telemetry["store_hits"] = sum(1 for h in hits.values() if h)
        telemetry["store_misses"] = sum(1 for h in hits.values() if not h)
        telemetry["manifest_resumed"] = resumed_count

    merged = dict(
        sorted(
            ((point_key(spec), results[i]) for i, spec in enumerate(specs)),
            key=lambda item: item[0],
        )
    )
    return {
        "experiment": experiment,
        "scale": scale,
        "base_seed": base_seed,
        "points": merged,
        "derived": _derive_metrics(experiment, merged),
    }


def sweep_to_json(payload: dict) -> str:
    """Canonical byte-stable rendering of a sweep document."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
