"""Figure 8: simulation speedups per benchmark, scheme and host-core count.

Speedup of a run = baseline simulation time / run simulation time, where the
baseline is the cycle-by-cycle simulation of the 8-core target on **one**
host core (§4.2.1).  Panels (a)-(d) are the four benchmarks; panel (e) is
the harmonic mean across benchmarks.

Expected shape (paper §4.2.1, asserted in tests/benchmarks):

* speedup improves with host cores for every scheme;
* cc is lowest and scales worst;
* all slack schemes (incl. quantum) beat cc clearly (>= ~3.3x even at 2 hosts);
* su >= s100 >= s9 >= q10; s9* ~ s9; l10 >= q10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import BENCHMARKS, HOST_COUNTS, SCHEMES, Runner
from repro.experiments.parallel import build_points, point_key
from repro.stats.metrics import harmonic_mean
from repro.stats.tables import Table

__all__ = ["run_figure8", "Figure8Data", "render_figure8"]


@dataclass
class Figure8Data:
    """speedup[benchmark][scheme][host_cores] plus the harmonic-mean panel."""

    schemes: tuple[str, ...]
    host_counts: tuple[int, ...]
    benchmarks: tuple[str, ...]
    speedup: dict = field(default_factory=dict)   # bench -> scheme -> {H: x}
    hmean: dict = field(default_factory=dict)     # scheme -> {H: x}

    def series(self, benchmark: str, scheme: str) -> list[float]:
        return [self.speedup[benchmark][scheme][h] for h in self.host_counts]


def run_figure8(
    runner: Runner | None = None,
    *,
    schemes: tuple[str, ...] = SCHEMES,
    host_counts: tuple[int, ...] = HOST_COUNTS,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> Figure8Data:
    """Run the full Figure 8 grid (plus the cc@1 baselines).

    The point list comes from :func:`repro.experiments.parallel.build_points`
    — the same grid authority ``repro sweep figure8`` uses — so the figure's
    job identities are exactly the sweep's and one warms the store for the
    other.
    """
    runner = runner or Runner()
    points = build_points(
        "figure8", runner.scale, runner.seed,
        benchmarks=benchmarks, schemes=schemes, host_counts=host_counts,
    )
    docs = {point_key(p): runner.point(p) for p in points}
    data = Figure8Data(schemes=schemes, host_counts=host_counts, benchmarks=benchmarks)
    for bench in benchmarks:
        base = docs[f"{bench}/cc/h1"]
        data.speedup[bench] = {}
        for scheme in schemes:
            data.speedup[bench][scheme] = {}
            for hosts in host_counts:
                doc = docs[f"{bench}/{scheme}/h{hosts}"]
                # Makespans come off the stats registry dumps of both runs.
                data.speedup[bench][scheme][hosts] = (
                    base["host_time"] / doc["host_time"]
                    if doc["host_time"]
                    else float("inf")
                )
    for scheme in schemes:
        data.hmean[scheme] = {}
        for hosts in host_counts:
            data.hmean[scheme][hosts] = harmonic_mean(
                [data.speedup[b][scheme][hosts] for b in benchmarks]
            )
    return data


def render_figure8(data: Figure8Data) -> str:
    """Render panels (a)-(e) as ASCII tables (rows = schemes, cols = hosts)."""
    panels = []
    labels = {b: f"Figure 8({chr(ord('a') + i)}): {b}" for i, b in enumerate(data.benchmarks)}
    for bench in data.benchmarks:
        table = Table(labels[bench] + " — simulation speedup over cc@1host",
                      ["scheme"] + [f"{h} hosts" for h in data.host_counts])
        for scheme in data.schemes:
            table.add_row(scheme, *[data.speedup[bench][scheme][h] for h in data.host_counts])
        panels.append(table.render())
    table = Table(
        "Figure 8(e): harmonic mean of benchmark speedups",
        ["scheme"] + [f"{h} hosts" for h in data.host_counts],
    )
    for scheme in data.schemes:
        table.add_row(scheme, *[data.hmean[scheme][h] for h in data.host_counts])
    panels.append(table.render())
    return "\n\n".join(panels)


def main() -> None:  # pragma: no cover - CLI entry
    print(render_figure8(run_figure8()))


if __name__ == "__main__":  # pragma: no cover
    main()
