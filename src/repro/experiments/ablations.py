"""Ablation studies around the paper's design claims (DESIGN.md A1-A4).

* **A1 slack sweep** — §6 claims a speed/accuracy *trade-off*: error and
  speedup should both grow with the slack bound.
* **A2 critical latency** — §3.1: conservative oldest-first processing is
  violation-free iff slack < critical latency; sweeping the quantum/slack
  across the critical latency should show the violation onset.
* **A3 fast-forwarding** — §3.2.3 proposes compensating workload violations
  by fast-forwarding the storing core; measure violations and error with it
  on/off.
* **A4 core-model sensitivity** — the scheme *ordering* should not depend on
  the core microarchitecture (in-order vs OoO).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TargetConfig
from repro.experiments.common import Runner
from repro.experiments.parallel import ABLATION_SLACKS, build_points, point_key
from repro.stats.tables import Table

__all__ = [
    "run_slack_sweep",
    "run_critical_latency_sweep",
    "run_fastforward_ablation",
    "run_coremodel_ablation",
    "run_adaptive_quantum",
    "render_sweep",
]


@dataclass
class SweepPoint:
    label: str
    speedup: float
    error: float
    violations: int
    workload_violations: int = 0


def _total_violations(result) -> int:
    """Violation total read off the run's stats registry dump."""
    stats = result.stats
    return (
        stats["violations.simulation_state"]
        + stats["violations.system_state"]
        + stats["violations.workload_state"]
    )


def run_slack_sweep(
    workload: str = "fft",
    slacks: tuple[int, ...] = ABLATION_SLACKS,
    *,
    host_cores: int = 8,
    runner: Runner | None = None,
) -> list[SweepPoint]:
    """A1: bounded slack sweep — speedup and error vs the slack bound.

    The grid comes from :func:`repro.experiments.parallel.build_points`
    ("ablations") — the same points ``repro sweep ablations`` runs, so the
    two share stored records; the slack bounds default to the sweep's
    :data:`~repro.experiments.parallel.ABLATION_SLACKS`.
    """
    runner = runner or Runner()
    grid = build_points(
        "ablations", runner.scale, runner.seed,
        workload=workload, slacks=slacks, host_cores=host_cores,
    )
    docs = {point_key(p): runner.point(p) for p in grid}
    base = docs[f"{workload}/cc/h1"]
    gold = docs[f"{workload}/cc/h{host_cores}"]

    def _point(scheme: str) -> SweepPoint:
        doc = docs[f"{workload}/{scheme}/h{host_cores}"]
        return SweepPoint(
            label=scheme,
            speedup=(
                base["host_time"] / doc["host_time"]
                if doc["host_time"]
                else float("inf")
            ),
            error=(
                abs(doc["execution_cycles"] - gold["execution_cycles"])
                / gold["execution_cycles"]
                if gold["execution_cycles"]
                else 0.0
            ),
            violations=doc["violations"],
            workload_violations=doc["workload_violations"],
        )

    return [_point(f"s{slack}") for slack in slacks] + [_point("su")]


def run_critical_latency_sweep(
    workload: str = "fft",
    slacks: tuple[int, ...] = (2, 5, 9, 15, 30, 60),
    *,
    host_cores: int = 8,
    runner: Runner | None = None,
) -> list[SweepPoint]:
    """A2: oldest-first bounded slack around the critical latency (10).

    Below the critical latency the conservative S* discipline is
    violation-free; above it even oldest-first processing can reorder
    against in-flight responses (paper §3.1).
    """
    runner = runner or Runner()
    gold = runner.run(workload, "cc", host_cores)
    base = runner.baseline(workload)
    points = []
    for slack in slacks:
        result = runner.run(workload, f"s{slack}*", host_cores)
        points.append(
            SweepPoint(
                label=f"s{slack}*",
                speedup=result.speedup_over(base),
                error=result.error_vs(gold),
                violations=_total_violations(result),
            )
        )
    return points


def run_fastforward_ablation(
    workload: str = "water",
    scheme: str = "s100",
    *,
    host_cores: int = 8,
    runner: Runner | None = None,
) -> dict:
    """A3: workload-state violation compensation by fast-forwarding."""
    runner = runner or Runner()
    gold = runner.run(workload, "cc", host_cores)
    off = runner.run(workload, scheme, host_cores, fastforward=False)
    on = runner.run(workload, scheme, host_cores, fastforward=True)
    return {
        "scheme": scheme,
        "workload": workload,
        "off": {
            "error": off.error_vs(gold),
            "workload_violations": off.stats["violations.workload_state"],
            "fastforwards": off.stats["violations.fastforwards"],
        },
        "on": {
            "error": on.error_vs(gold),
            "workload_violations": on.stats["violations.workload_state"],
            "fastforwards": on.stats["violations.fastforwards"],
        },
    }


def run_coremodel_ablation(
    workload: str = "fft",
    schemes: tuple[str, ...] = ("cc", "q10", "s9", "su"),
    *,
    host_cores: int = 8,
    runner: Runner | None = None,
) -> dict:
    """A4: does the scheme speed ordering survive a core-model change?"""
    runner = runner or Runner()
    orderings = {}
    for model in ("inorder", "ooo"):
        target = TargetConfig(core_model=model)
        times = {
            scheme: runner.run(workload, scheme, host_cores, target=target).host_time
            for scheme in schemes
        }
        orderings[model] = sorted(schemes, key=lambda s: times[s], reverse=True)
    return orderings


def run_adaptive_quantum(
    workload: str = "fft",
    configs: tuple[str, ...] = ("q10", "aq10-160", "aq4-40"),
    *,
    host_cores: int = 8,
    runner: Runner | None = None,
) -> list[SweepPoint]:
    """A5 (extension, paper §5 / Falcón et al. [8]): traffic-adaptive quantum
    vs the fixed critical-latency quantum."""
    runner = runner or Runner()
    gold = runner.run(workload, "cc", host_cores)
    base = runner.baseline(workload)
    points = []
    for config in configs:
        result = runner.run(workload, config, host_cores)
        points.append(
            SweepPoint(
                label=config,
                speedup=result.speedup_over(base),
                error=result.error_vs(gold),
                violations=_total_violations(result),
            )
        )
    return points


def render_sweep(title: str, points: list[SweepPoint]) -> str:
    table = Table(title, ["config", "speedup", "error", "violations"])
    for p in points:
        table.add_row(p.label, p.speedup, f"{p.error * 100:.2f}%", p.violations)
    return table.render()
