"""Violation taxonomy (paper §3.2): detection counters for simulation-state,
simulated-system-state and workload-state violations, plus the
fast-forwarding compensation mechanism proposed in §3.2.3."""

from repro.violations.detect import ViolationCounters, WordOrderTracker

__all__ = ["ViolationCounters", "WordOrderTracker"]
