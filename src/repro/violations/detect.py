"""Violation taxonomy counters (paper §3.2).

The paper classifies slack-induced distortions into three families:

* **simulation-state violations** (§3.2.1, Figure 4): a shared *simulator*
  resource (bus, L2 bank, DRAM port) is granted to requests out of
  simulated-time order, so occupancy intervals can overlap in simulated time;
* **simulated-system-state violations** (§3.2.2, Figures 5-6): hardware
  bookkeeping state (directory entries) transitions in an order that differs
  from the cycle-by-cycle order;
* **workload-state violations** (§3.2.3, Figure 7): a conflicting
  Store/Load pair to the same word executes in an order that differs from
  simulated-time order, so the load observes a different value.

Counters are cheap to maintain and are asserted to be zero for conservative
schemes (cc, quantum<=critical, lookahead, oldest-first) in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ViolationCounters", "WordOrderTracker"]


@dataclass
class ViolationCounters:
    """Aggregated violation counts for one simulation run."""

    simulation_state: int = 0
    system_state: int = 0
    workload_state: int = 0
    fastforwards: int = 0
    fastforward_cycles: int = 0
    #: Cross-domain ordering slips under memory-side sharding (DESIGN.md
    #: §10): an event delivered out of one domain whose timestamp precedes
    #: another domain's already-exchanged horizon.  Zero for the monolithic
    #: manager and for any single-domain run.
    cross_domain: int = 0

    #: per-resource detail: resource name -> count
    by_resource: dict = field(default_factory=dict)

    def record_simulation_state(self, resource: str) -> None:
        self.simulation_state += 1
        self.by_resource[resource] = self.by_resource.get(resource, 0) + 1

    def record_system_state(self, resource: str = "directory") -> None:
        self.system_state += 1
        self.by_resource[resource] = self.by_resource.get(resource, 0) + 1

    def record_cross_domain(self, resource: str, count: int = 1) -> None:
        self.cross_domain += count
        self.by_resource[resource] = self.by_resource.get(resource, 0) + count

    def record_workload_state(self) -> None:
        self.workload_state += 1

    def record_fastforward(self, cycles: int) -> None:
        self.fastforwards += 1
        self.fastforward_cycles += cycles

    @property
    def total(self) -> int:
        return self.simulation_state + self.system_state + self.workload_state

    def summary(self) -> str:
        text = (
            f"violations: simulation={self.simulation_state} "
            f"system={self.system_state} workload={self.workload_state} "
            f"fastforwards={self.fastforwards}"
        )
        if self.cross_domain:
            text += f" cross_domain={self.cross_domain}"
        return text


class WordOrderTracker:
    """Detects conflicting same-word access reordering (paper Figure 7).

    Tracks, per word address, the latest simulated time at which any core
    loaded or stored it.  A *workload-state violation* is flagged when a
    store is processed whose simulated time precedes an already-performed
    load of the same word by a different core (the load returned the old
    value although the store "happened" before it), or symmetrically a load
    processed before an already-performed earlier store.

    With fast-forwarding enabled (paper §3.2.3), the store's core is told how
    many cycles to fast-forward so the store appears contemporaneous with the
    conflicting load — "this idle time must be undetectable by the program".
    """

    __slots__ = ("counters", "fastforward", "_last_load", "_last_store")

    def __init__(self, counters: ViolationCounters, fastforward: bool = False) -> None:
        self.counters = counters
        self.fastforward = fastforward
        self._last_load: dict[int, tuple[int, int]] = {}   # addr -> (ts, core)
        self._last_store: dict[int, tuple[int, int]] = {}

    def observe_load(self, addr: int, core: int, ts: int) -> None:
        prev = self._last_load.get(addr)
        if prev is None or ts > prev[0]:
            self._last_load[addr] = (ts, core)
        last_store = self._last_store.get(addr)
        if last_store is not None and last_store[1] != core and last_store[0] > ts:
            # A store with a *later* timestamp was already performed: this
            # load reads the new value although it is in the store's past.
            self.counters.record_workload_state()

    def observe_store(self, addr: int, core: int, ts: int) -> int:
        """Record a store; returns fast-forward cycles for the storing core
        (0 unless fast-forwarding is enabled and a violation was detected)."""
        last_load = self._last_load.get(addr)
        ff = 0
        if last_load is not None and last_load[1] != core and last_load[0] >= ts:
            self.counters.record_workload_state()
            if self.fastforward:
                ff = last_load[0] - ts + 1
                self.counters.record_fastforward(ff)
                ts += ff
        prev = self._last_store.get(addr)
        if prev is None or ts > prev[0]:
            self._last_store[addr] = (ts, core)
        return ff
