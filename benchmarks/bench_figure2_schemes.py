"""Figure 2 regeneration: the four synchronization disciplines on a 4-core
pedagogical workload (cycle-by-cycle, quantum, bounded slack, unbounded)."""

from conftest import write_report

from repro.experiments.figure2 import render_figure2, run_figure2


def test_figure2_scheme_anatomy(benchmark, report_dir):
    traces = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    write_report(report_dir, "figure2.txt", render_figure2(traces))
    by_name = {t.scheme: t for t in traces}
    assert by_name["cc"].max_slack_observed() <= 1
    assert by_name["q3"].max_slack_observed() <= 3
    assert by_name["s2"].max_slack_observed() <= 2
    assert by_name["su"].max_slack_observed() > 3
    # Less synchronization -> faster simulation.
    assert by_name["cc"].final_host_time > by_name["q3"].final_host_time
    assert by_name["q3"].final_host_time > by_name["su"].final_host_time
    for t in traces:
        benchmark.extra_info[f"host_time_{t.scheme}"] = round(t.final_host_time)
