"""Figure 8 regeneration: speedups per benchmark/scheme/host-core count.

Shape assertions mirror the paper's §4.2.1 observations; absolute factors
depend on the calibrated host-cost model (see EXPERIMENTS.md).
"""

from conftest import write_report

from repro.experiments.figure8 import render_figure8, run_figure8


def test_figure8_speedups(benchmark, runner, report_dir):
    data = benchmark.pedantic(lambda: run_figure8(runner), rounds=1, iterations=1)
    write_report(report_dir, "figure8.txt", render_figure8(data))

    hmean = data.hmean
    for hosts in data.host_counts:
        benchmark.extra_info[f"hmean_su_{hosts}h"] = round(hmean["su"][hosts], 2)
        benchmark.extra_info[f"hmean_cc_{hosts}h"] = round(hmean["cc"][hosts], 2)

    # Observation 1: speedup always improves with more host cores.
    for scheme in data.schemes:
        series = [hmean[scheme][h] for h in data.host_counts]
        assert series == sorted(series) or max(
            abs(series[i + 1] - series[i]) for i in range(len(series) - 1)
        ) < 0.5 * series[-1], scheme

    # Observation 2: cc is poor and scales badly (far below every slack
    # scheme; the paper measured <= 2.6, we allow headroom for scale).
    assert hmean["cc"][max(data.host_counts)] < 4.0
    assert hmean["cc"][max(data.host_counts)] < 0.5 * hmean["s9"][max(data.host_counts)]

    # Observation 3: every slack scheme >= 3.3x even on 2 host cores.
    for scheme in ("q10", "l10", "s9", "s9*", "s100", "su"):
        assert hmean[scheme][2] >= 3.3, scheme

    # Observation 4: su best (or tied), s100 > q10, s9 > q10, s9* ~ s9.
    top = max(data.host_counts)
    assert hmean["su"][top] >= 0.9 * max(hmean[s][top] for s in data.schemes)
    assert hmean["s100"][top] > hmean["q10"][top]
    assert hmean["s9"][top] > hmean["q10"][top]
    assert abs(hmean["s9*"][top] - hmean["s9"][top]) / hmean["s9"][top] < 0.15
