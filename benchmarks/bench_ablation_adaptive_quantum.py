"""Ablation A5 (extension): traffic-adaptive quantum (paper §5, after
Falcón et al. [8]) vs the fixed critical-latency quantum.  The adaptive
scheme should cut barrier count and beat q10's speedup at a bounded error
cost."""

from conftest import write_report

from repro.experiments.ablations import render_sweep, run_adaptive_quantum


def test_adaptive_quantum(benchmark, runner, report_dir):
    points = benchmark.pedantic(
        lambda: run_adaptive_quantum("fft", runner=runner), rounds=1, iterations=1
    )
    write_report(report_dir, "ablation_adaptive_quantum.txt",
                 render_sweep("A5: adaptive quantum vs fixed q10 (fft)", points))
    by_label = {p.label: p for p in points}
    assert by_label["aq10-160"].speedup > by_label["q10"].speedup
    # Accuracy cost stays bounded (related work reports < 5% error).
    assert by_label["aq10-160"].error < 0.10
