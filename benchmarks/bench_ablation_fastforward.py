"""Ablation A3: fast-forward compensation of workload-state violations
(paper §3.2.3 proposes it; 'Currently, we do not compensate' — we implement
it as the natural extension)."""

import json

from conftest import write_report

from repro.experiments.ablations import run_fastforward_ablation


def test_fastforward_ablation(benchmark, runner, report_dir):
    result = benchmark.pedantic(
        lambda: run_fastforward_ablation("water", "s100", runner=runner),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "ablation_fastforward.txt", json.dumps(result, indent=2))
    # Fast-forwarding compensates store-side races (load-side detections have
    # no compensation — the paper's mechanism delays the *store*).  It must
    # never make the run incorrect and should keep error in the same regime.
    assert result["on"]["fastforwards"] >= 0
    assert result["on"]["error"] <= max(0.05, result["off"]["error"] * 3)
