"""Ablation A4: scheme ordering is a property of the synchronization
structure, not of the core microarchitecture (in-order vs NetBurst-like
OoO)."""

import json

from conftest import write_report

from repro.experiments.ablations import run_coremodel_ablation


def test_coremodel_ordering(benchmark, runner, report_dir):
    orderings = benchmark.pedantic(
        lambda: run_coremodel_ablation("fft", schemes=("cc", "q10", "s9", "su"), runner=runner),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "ablation_coremodel.txt", json.dumps(orderings, indent=2))
    # cc is the slowest under both core models; su among the fastest.
    for model, order in orderings.items():
        assert order[0] == "cc", model
        assert order[-1] in ("su", "s9"), model
