"""Micro-benchmarks of the simulator infrastructure itself: compiler
throughput and engine cycle rate.  These use pytest-benchmark's statistics
properly (multiple rounds) since each call is cheap."""

from repro.core import run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.lang import compile_source
from repro.workloads.fft import fft_source
from repro.workloads.synthetic import sharing_workload


def test_compile_throughput(benchmark):
    src = fft_source(64, 8)
    result = benchmark(lambda: compile_source(src))
    assert result.program.size_insns > 100


def test_engine_cycle_rate_cc(benchmark):
    def run():
        return run_simulation(
            None,
            trace_cores=sharing_workload(4, 20, seed=1),
            host=HostConfig(num_cores=4),
            sim=SimConfig(scheme="cc", seed=1),
            target=TargetConfig(num_cores=4, core_model="trace"),
        )

    result = benchmark(run)
    assert result.completed


def test_engine_cycle_rate_su(benchmark):
    def run():
        return run_simulation(
            None,
            trace_cores=sharing_workload(4, 20, seed=1),
            host=HostConfig(num_cores=4),
            sim=SimConfig(scheme="su", seed=1),
            target=TargetConfig(num_cores=4, core_model="trace"),
        )

    result = benchmark(run)
    assert result.completed
