"""Micro-benchmarks of the simulator infrastructure itself: compiler
throughput and engine cycle rate.  These use pytest-benchmark's statistics
properly (multiple rounds) since each call is cheap.

Besides the interactive pytest-benchmark table, each test records its mean
wall time and throughput via :mod:`repro.stats.perfjson`; at session end the
batch is written to ``BENCH_engine.json`` in the repo root, which
``benchmarks/check_regression.py`` gates against ``benchmarks/BASELINES.json``
(>20% throughput regression fails CI)."""

import os
import pathlib

import pytest

from repro.core import run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.cpu.interp import run_functional
from repro.lang import compile_source
from repro.stats.perfjson import PerfRecorder
from repro.workloads.fft import fft_source
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import sharing_workload

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def perf():
    recorder = PerfRecorder(scale=os.environ.get("REPRO_SCALE", "tiny"))
    yield recorder
    if recorder.entries:
        print(f"\n[perf record written to {recorder.write(BENCH_JSON)}]")


def _engine_run(scheme, scheduling="dynamic", backend="sequential", mem_domains=1):
    return run_simulation(
        None,
        trace_cores=sharing_workload(4, 20, seed=1),
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme=scheme, seed=1, scheduling=scheduling,
                      backend=backend, mem_domains=mem_domains),
        target=TargetConfig(num_cores=4, core_model="trace"),
    )


def test_compile_throughput(benchmark, perf):
    src = fft_source(64, 8)
    # cache=False: this measures the compile pipeline, not the on-disk cache.
    result = benchmark(lambda: compile_source(src, cache=False))
    assert result.program.size_insns > 100
    perf.record(
        "compile_throughput",
        seconds=benchmark.stats.stats.mean,
        work=result.program.size_insns,
        work_unit="insns",
    )


def test_engine_cycle_rate_cc(benchmark, perf):
    result = benchmark(lambda: _engine_run("cc"))
    assert result.completed
    # Work and the determinism fingerprint both come off the registry dump;
    # check_regression.py compares stats_digest against the pinned baseline
    # (machine-independent, unlike the throughputs).
    perf.record(
        "engine_cycle_rate_cc",
        seconds=benchmark.stats.stats.mean,
        work=result.stats["target.execution_cycles"],
        work_unit="cycles",
        extra={"stats_digest": result.stats_sha256},
    )


def test_engine_cycle_rate_cc_static(benchmark, perf):
    """cc under static bulk-synchronous window scheduling (DESIGN.md §9).

    Same simulation as ``test_engine_cycle_rate_cc`` with per-turn manager
    dispatch hoisted to window edges; the pinned ``stats_digest`` in
    BASELINES.json is byte-identical to the dynamic cc pin — the speedup is
    pure host-side scheduling.
    """
    result = benchmark(lambda: _engine_run("cc", scheduling="static"))
    assert result.completed
    assert result.stats["engine.scheduling"] == "static"
    perf.record(
        "engine_cycle_rate_cc_static",
        seconds=benchmark.stats.stats.mean,
        work=result.stats["target.execution_cycles"],
        work_unit="cycles",
        extra={"stats_digest": result.stats_sha256},
    )


def test_engine_cycle_rate_cc_domains(benchmark, perf):
    """cc with the memory side sharded into 4 scheduling domains, serviced
    by the threaded backend (DESIGN.md §10).

    Sharding floors every window at the exchange quantum (the critical
    memory latency), so cc stops re-arming a window per bus grant and the
    four domain shards service their batches on worker threads.  The pinned
    ``stats_digest`` differs from the monolithic cc pin — flooring coarsens
    the windows — but is seed-stable and backend-independent, which the CI
    domain-matrix job cross-checks.  BASELINES.json pins this at >=1.5x the
    monolithic cc cycle rate; the regression gate keeps it there.
    """
    result = benchmark(lambda: _engine_run("cc", backend="threaded", mem_domains=4))
    assert result.completed
    assert result.stats["sim.mem_domains"] == 4
    perf.record(
        "engine_cycle_rate_cc_domains",
        seconds=benchmark.stats.stats.mean,
        work=result.stats["target.execution_cycles"],
        work_unit="cycles",
        extra={"stats_digest": result.stats_sha256},
    )


@pytest.fixture(scope="module")
def fft_trace(tmp_path_factory):
    """One functional capture of fft tiny, shared by the replay benches."""
    path = str(tmp_path_factory.mktemp("trace") / "fft_cc.trace")
    program = make_workload("fft", scale="tiny").program
    result = run_simulation(
        program,
        sim=SimConfig(scheme="cc", seed=1, trace_mode="capture", trace_path=path),
    )
    assert result.completed
    return program, path


def test_engine_cycle_rate_cc_replay(benchmark, perf, fft_trace):
    """cc replayed from a captured trace, domains-threaded (DESIGN.md §11).

    The workhorse sweep configuration: the functional cores are not
    re-executed (ReplayCore feeds the recorded committed stream through the
    live engine/scheme/memory stack) and the memory side runs sharded on
    worker threads.  The pinned ``stats_digest`` equals a direct fft run
    under the identical scheme/backend config — replay is observationally
    indistinguishable (tests/trace pins this per scheme family) — and
    BASELINES.json pins the cycle rate at >=3x the monolithic direct cc pin;
    the regression gate keeps it there.
    """
    program, path = fft_trace

    def go():
        return run_simulation(
            program,
            sim=SimConfig(
                scheme="cc", seed=1, trace_mode="replay", trace_path=path,
                backend="threaded", mem_domains=4,
            ),
        )

    result = benchmark(go)
    assert result.completed
    perf.record(
        "engine_cycle_rate_cc_replay",
        seconds=benchmark.stats.stats.mean,
        work=result.stats["target.execution_cycles"],
        work_unit="cycles",
        extra={"stats_digest": result.stats_sha256},
    )


def test_engine_cycle_rate_su(benchmark, perf):
    result = benchmark(lambda: _engine_run("su"))
    assert result.completed
    perf.record(
        "engine_cycle_rate_su",
        seconds=benchmark.stats.stats.mean,
        work=result.stats["target.execution_cycles"],
        work_unit="cycles",
        extra={"stats_digest": result.stats_sha256},
    )


@pytest.mark.parametrize("name", ["fft", "lu"])
def test_workload_kips(benchmark, perf, name):
    """Functional KIPS on a real benchmark (single-threaded, predecoded)."""
    program = make_workload(name, scale="tiny", nthreads=1).program
    result = benchmark(lambda: run_functional(program))
    assert result.exit_code == 0
    perf.record(
        f"workload_kips_{name}",
        seconds=benchmark.stats.stats.mean,
        work=result.instructions,
        work_unit="insns",
    )


@pytest.mark.parametrize("dispatch", ["predecoded", "oracle"])
def test_funcsim_dispatch(benchmark, perf, dispatch):
    """Raw interpreter dispatch rate, predecoded closures vs decode oracle."""
    program = make_workload("fft", scale="tiny", nthreads=1).program
    result = benchmark(lambda: run_functional(program, dispatch=dispatch))
    assert result.exit_code == 0
    perf.record(
        f"funcsim_dispatch_{dispatch}",
        seconds=benchmark.stats.stats.mean,
        work=result.instructions,
        work_unit="insns",
    )
