"""Table 2 regeneration: benchmarks, input sets, baseline KIPS.

Paper row order: Barnes 111.3, FFT 120.5, LU 114.4, Water-Nsquared 127.1
KIPS for the cycle-by-cycle 8-core simulation on one host core.
"""

from conftest import write_report

from repro.experiments.table2 import render_table2, run_table2


def test_table2_kips(benchmark, runner, report_dir):
    rows = benchmark.pedantic(lambda: run_table2(runner), rounds=1, iterations=1)
    write_report(report_dir, "table2.txt", render_table2(rows))
    for row in rows:
        benchmark.extra_info[f"kips_{row.benchmark}"] = round(row.kips, 1)
        # Same order of magnitude as the paper's baseline.
        assert 30 < row.kips < 500
