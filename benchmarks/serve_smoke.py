#!/usr/bin/env python
"""The serve chaos ladder, end to end (CI: the `serve-smoke` job).

Drives a real ``repro serve`` daemon through the full failure drill from
DESIGN.md §13 and proves the serve contract holds:

1. Direct-run every job spec into an isolated baseline store (ground truth).
2. Start the daemon and submit all jobs over the HTTP API.
3. SIGKILL one worker process mid-run (a crashed leaseholder).
4. SIGTERM the daemon itself mid-run (an interrupted incarnation).
5. Restart the daemon: recovery must re-lease every orphan.
6. Every job must land DONE — no losses, no duplicate rows — and every
   served record's deterministic fields must be byte-identical to the
   direct-run baseline (compared via ``cmp`` on dumped files).

Exit status is 0 only when every rung holds.  Usage::

    python benchmarks/serve_smoke.py --out smoke-out [--jobs 8 --workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.jobs import JobSpec, ResultStore  # noqa: E402
from repro.jobs.execute import execute  # noqa: E402
from repro.jobs.spec import spec_to_dict  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

#: The deterministic slice of a record that must survive any failure path
#: bit-for-bit.  Provenance (wall time, engine, timestamps) may differ.
DETERMINISTIC_FIELDS = (
    "job_key", "completed", "metrics", "cores", "output_sha256",
    "stats", "stats_digest", "stats_dump",
)


def log(msg: str) -> None:
    print(f"serve-smoke: {msg}", flush=True)


def fatal(msg: str) -> "None":
    log(f"FAIL: {msg}")
    sys.exit(1)


def deterministic_dump(record: dict) -> bytes:
    return json.dumps(
        {f: record[f] for f in DETERMINISTIC_FIELDS}, sort_keys=True, indent=1
    ).encode() + b"\n"


def start_daemon(cache_dir: Path, workers: int) -> subprocess.Popen:
    env = {**os.environ, "REPRO_CACHE_DIR": str(cache_dir),
           "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--workers", str(workers), "--seed", "7"],
        env=env,
    )
    endpoint = cache_dir / "serve" / "endpoint.json"
    deadline = time.time() + 60
    while time.time() < deadline:
        if proc.poll() is not None:
            fatal(f"daemon exited early with {proc.returncode}")
        try:
            if json.loads(endpoint.read_text()).get("pid") == proc.pid:
                return proc
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.1)
    fatal("daemon never published its endpoint")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", type=Path, default=Path("serve-smoke-out"))
    args = parser.parse_args()

    out = args.out
    cache_dir = out / "cache"
    baseline_dir = out / "baseline"
    served_dir = out / "served"
    for d in (cache_dir, baseline_dir, served_dir):
        d.mkdir(parents=True, exist_ok=True)

    specs = [
        JobSpec.build("fft", "tiny", scheme="s9", seed=seed, host_cores=4)
        for seed in range(1, args.jobs + 1)
    ]

    # Rung 0: ground truth, computed without the daemon.
    log(f"direct-running {len(specs)} baseline job(s)")
    baseline_store = ResultStore(out / "baseline-store")
    keys = []
    for i, spec in enumerate(specs):
        outcome = execute(spec, store=baseline_store, trace=None)
        keys.append(outcome.key)
        (baseline_dir / f"{i:02d}.json").write_bytes(
            deterministic_dump(outcome.record)
        )

    # Rung 1: serve them.
    daemon = start_daemon(cache_dir, args.workers)
    client = ServeClient(serve_dir=cache_dir / "serve")
    for spec in specs:
        client.submit(spec_to_dict(spec))
    log(f"submitted {len(specs)} job(s) to pid {daemon.pid}")

    # Rung 2: SIGKILL a worker the moment one is busy.
    deadline = time.time() + 60
    victim = None
    while time.time() < deadline and victim is None:
        for worker in client.status()["workers"]:
            if worker["busy"] and worker["alive"]:
                victim = worker
                break
        time.sleep(0.05)
    if victim is None:
        fatal("no worker ever went busy")
    os.kill(victim["pid"], signal.SIGKILL)
    log(f"SIGKILLed worker pid {victim['pid']} "
        f"(job {victim['job_key'][:16]})")

    # Rung 3: SIGTERM the daemon while work is still in flight.
    time.sleep(0.5)
    daemon.send_signal(signal.SIGTERM)
    rc = daemon.wait(timeout=120)
    log(f"daemon drained and exited with {rc}")
    if rc != 0:
        fatal("daemon did not shut down cleanly on SIGTERM")

    # Rung 4: restart; recovery must finish everything.
    daemon = start_daemon(cache_dir, args.workers)
    client = ServeClient(serve_dir=cache_dir / "serve")
    deadline = time.time() + 300
    while time.time() < deadline:
        counts = client.status()["queue"]
        if counts["DONE"] == len(specs):
            break
        if counts["FAILED"] or counts["DEAD"]:
            states = {j["job_key"][:16]: j["state"] for j in client.jobs()}
            fatal(f"jobs failed: {states}")
        time.sleep(0.2)
    else:
        fatal(f"jobs still unfinished: {client.status()['queue']}")
    log("all jobs DONE across crash + restart")

    rows = client.jobs()
    if len(rows) != len(specs):
        fatal(f"expected {len(specs)} rows, found {len(rows)} (duplicates?)")

    # Rung 5: served records equal the direct-run baseline, via cmp.
    for i, key in enumerate(keys):
        (served_dir / f"{i:02d}.json").write_bytes(
            deterministic_dump(client.fetch(key))
        )
    client.drain()
    daemon.wait(timeout=120)
    failures = 0
    for i in range(len(specs)):
        rc = subprocess.run(
            ["cmp", str(baseline_dir / f"{i:02d}.json"),
             str(served_dir / f"{i:02d}.json")]
        ).returncode
        if rc != 0:
            log(f"FAIL: job {i:02d} served result differs from baseline")
            failures += 1
    if failures:
        return 1
    log(f"OK: {len(specs)} served result(s) byte-identical to direct runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
