"""Table 3 regeneration: relative execution-time errors for S9/S100/SU.

Paper: errors <= 0.08% (S9), <= 1.82% (S100), <= 5.94% (SU) at 100M
instructions.  At our reduced input scale the synchronization density per
instruction is far higher, so error ceilings are proportionally looser —
the *monotone growth with slack* is the reproduced shape.
"""

from conftest import write_report

from repro.experiments.table3 import render_table3, run_table3


def test_table3_errors(benchmark, runner, report_dir):
    rows = benchmark.pedantic(lambda: run_table3(runner), rounds=1, iterations=1)
    write_report(report_dir, "table3.txt", render_table3(rows))
    for row in rows:
        benchmark.extra_info[f"err_su_{row.benchmark}"] = round(row.errors["su"] * 100, 2)
        assert row.errors["s9"] < 0.06, row.benchmark
        assert row.errors["s9"] <= row.errors["s100"] + 0.02, row.benchmark
        assert row.errors["s100"] <= row.errors["su"] + 0.02, row.benchmark
        assert row.errors["su"] < 0.35, row.benchmark
