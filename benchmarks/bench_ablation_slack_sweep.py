"""Ablation A1: the speed/accuracy trade-off as the slack bound grows
(paper §6: 'Slack simulation offers new trade-offs between simulation speed
and accuracy')."""

from conftest import write_report

from repro.experiments.ablations import render_sweep, run_slack_sweep


def test_slack_sweep(benchmark, runner, report_dir):
    points = benchmark.pedantic(
        lambda: run_slack_sweep("fft", slacks=(1, 4, 9, 25, 100), runner=runner),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "ablation_slack_sweep.txt",
                 render_sweep("A1: bounded-slack sweep (fft)", points))
    speedups = [p.speedup for p in points]
    # Speed grows (weakly) with the bound; su is the asymptote.
    assert speedups[-1] >= speedups[0]
    assert max(speedups) / min(speedups) > 1.2
    # Violations (the accuracy cost) grow with the bound.
    assert points[-1].violations >= points[0].violations
