#!/usr/bin/env python
"""Bench smoke gate: fail CI on a >20% engine-throughput regression.

Compares the throughput figures in ``BENCH_engine.json`` (written by
``pytest benchmarks/bench_infrastructure.py --benchmark-only``) against the
pinned ``benchmarks/BASELINES.json``.  Because absolute wall times shift
between machines, both files carry a *calibration* measurement — the wall
time of a fixed pure-Python workload — and baselines are rescaled by the
measured host-speed ratio before the 20% threshold is applied.

Usage::

    python benchmarks/check_regression.py            # gate (exit 1 on fail)
    python benchmarks/check_regression.py --update   # re-pin baselines
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.stats.perfjson import host_calibration  # noqa: E402

BASELINES_PATH = pathlib.Path(__file__).resolve().parent / "BASELINES.json"
BENCH_PATH = ROOT / "BENCH_engine.json"

#: Maximum tolerated throughput regression after host-speed rescaling.
THRESHOLD = 0.20


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="re-pin BASELINES.json from the current BENCH_engine.json")
    args = parser.parse_args(argv)

    if not BENCH_PATH.exists():
        print(f"error: {BENCH_PATH} not found — run "
              "`pytest benchmarks/bench_infrastructure.py --benchmark-only` first")
        return 2
    bench = json.loads(BENCH_PATH.read_text())
    cal = host_calibration()

    if args.update:
        pinned_benchmarks = {}
        for name, entry in bench["benchmarks"].items():
            if "throughput" not in entry:
                continue
            pin = {"throughput": entry["throughput"], "work_unit": entry.get("work_unit", "")}
            # Stats digests are machine-independent determinism fingerprints:
            # pin them alongside the throughput when a bench reports one.
            if "stats_digest" in entry:
                pin["stats_digest"] = entry["stats_digest"]
            pinned_benchmarks[name] = pin
        payload = {
            "calibration_seconds": cal,
            "scale": bench.get("scale", "tiny"),
            "benchmarks": pinned_benchmarks,
        }
        BASELINES_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"baselines re-pinned to {BASELINES_PATH} (calibration {cal*1e3:.2f}ms)")
        return 0

    if not BASELINES_PATH.exists():
        print(f"error: {BASELINES_PATH} not found — pin with --update")
        return 2
    base = json.loads(BASELINES_PATH.read_text())
    if bench.get("scale") != base.get("scale"):
        print(f"error: scale mismatch (bench {bench.get('scale')!r} vs "
              f"baseline {base.get('scale')!r}) — rerun at the baseline scale")
        return 2

    # Host-speed ratio: >1 means this machine is faster than the baseline
    # machine, so proportionally more throughput is expected.  The session
    # ratio is the fallback; entries stamped with their own
    # calibration_seconds (recorded next to the measurement) get a
    # per-benchmark ratio, which tracks mid-session host-speed drift.
    speed = base["calibration_seconds"] / cal
    print(f"calibration: baseline {base['calibration_seconds']*1e3:.2f}ms, "
          f"here {cal*1e3:.2f}ms -> session host speed x{speed:.2f}")

    failed = False
    for name, pinned in sorted(base["benchmarks"].items()):
        entry = bench["benchmarks"].get(name)
        if entry is None or "throughput" not in entry:
            print(f"  MISSING {name}: not present in {BENCH_PATH.name}")
            failed = True
            continue
        entry_cal = entry.get("calibration_seconds")
        bench_speed = base["calibration_seconds"] / entry_cal if entry_cal else speed
        expected = pinned["throughput"] * bench_speed
        actual = entry["throughput"]
        ratio = actual / expected if expected > 0 else 0.0
        unit = pinned.get("work_unit", "")
        status = "ok" if ratio >= 1.0 - THRESHOLD else "REGRESSION"
        print(f"  {status:10s} {name}: {actual:,.0f} {unit}/s "
              f"vs expected {expected:,.0f} ({ratio:.2f}x, host x{bench_speed:.2f})")
        if ratio < 1.0 - THRESHOLD:
            failed = True
        # Determinism gate: a pinned stats digest must match exactly (it is
        # machine-independent — any difference means simulated behaviour
        # changed, which a throughput threshold would never catch).
        pinned_digest = pinned.get("stats_digest")
        if pinned_digest is not None:
            actual_digest = entry.get("stats_digest")
            if actual_digest != pinned_digest:
                print(f"  DIGEST   {name}: stats_digest {actual_digest} "
                      f"!= pinned {pinned_digest}")
                failed = True
    # The gate must be total in both directions: a bench result with no
    # pinned baseline would otherwise pass silently forever — a new (or
    # renamed) benchmark escapes the regression net until someone notices.
    for name in sorted(bench["benchmarks"]):
        entry = bench["benchmarks"][name]
        if "throughput" in entry and name not in base["benchmarks"]:
            print(f"  UNPINNED {name}: present in {BENCH_PATH.name} but not in "
                  f"{BASELINES_PATH.name} — pin it with --update")
            failed = True
    if failed:
        print(f"FAIL: throughput regressed more than {THRESHOLD:.0%} "
              "(or benchmarks missing/unpinned)")
        return 1
    print("bench smoke: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
