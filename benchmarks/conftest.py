"""Shared fixtures for the benchmark harness.

Scale selection: ``REPRO_SCALE=tiny|small|paper`` (default ``tiny`` here so
``pytest benchmarks/ --benchmark-only`` completes in minutes; use ``small``
or ``paper`` for numbers closer to the publication's regime).

Every bench writes its rendered table(s) into ``reports/`` so the regenerated
artifacts are inspectable regardless of pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro._util import atomic_write_text
from repro.experiments.common import Runner

REPORTS = pathlib.Path(__file__).resolve().parent.parent / "reports"


def bench_scale() -> str:
    return os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(scale=bench_scale(), seed=1)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORTS.mkdir(exist_ok=True)
    return REPORTS


def write_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    path = report_dir / name
    # Atomic publish: an interrupted bench run never leaves a torn report.
    atomic_write_text(path, text + "\n")
    print(f"\n[report written to {path}]\n{text}")
