"""Ablation A2: conservative oldest-first processing around the critical
latency (10 cycles = unloaded L2 access).  Paper §3.1: 'if the slack is more
than critical latency even the oldest-first simulation can potentially cause
simulation violations'."""

from conftest import write_report

from repro.experiments.ablations import render_sweep, run_critical_latency_sweep


def test_critical_latency_sweep(benchmark, runner, report_dir):
    points = benchmark.pedantic(
        lambda: run_critical_latency_sweep("fft", slacks=(2, 5, 9, 15, 30, 60), runner=runner),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "ablation_critical_latency.txt",
                 render_sweep("A2: oldest-first slack vs critical latency (fft)", points))
    for p in points:
        slack = int(p.label[1:-1])
        if slack < 10:
            assert p.violations == 0, p.label
